// Package sim provides the discrete-time engine that drives all simulator
// components, plus the System assembly that wires cores, caches, the memory
// controller and DRAM into the paper's Table 3 configuration.
package sim

import (
	"pracsim/internal/ticks"
)

// Engine advances simulated time, driving periodic tickers (cores, the
// memory controller) and one-shot scheduled events. Components are strictly
// single-threaded: all callbacks run on the caller's goroutine in time order.
//
// Both tickers and events live in binary min-heaps keyed by next fire
// time, so finding the next timestep is O(1) and every schedule or fire
// is O(log n) — the hot loop never scans the full ticker set. The heaps
// are concrete-typed with hand-rolled sift routines: pushing an event
// does not box it into an interface, so the per-request scheduling that
// dominates Engine work allocates nothing.
type Engine struct {
	now     ticks.T
	tickers tickerHeap
	events  eventHeap
	nextID  int
	stopped bool
	steps   int64
	firing  int // id of the ticker currently running its callback, -1 otherwise
}

// Ticker is a handle to a periodic callback, returned by AddTicker and
// accepted by RemoveTicker, PauseTicker and RescheduleTicker.
type Ticker struct {
	period ticks.T
	phase  ticks.T // first fire time mod period: the ticker's cycle grid
	id     int     // registration order; break ties at equal fire times
	pos    int     // index in the ticker heap, -1 while paused or removed
	paused bool    // parked by PauseTicker: off the heap but resumable
	fn     func(now ticks.T)
}

type event struct {
	at  ticks.T
	seq int64
	fn  func(now ticks.T)
}

// eventHeap is a concrete-typed binary min-heap ordered by (at, seq).
type eventHeap struct {
	items []event
	seq   int64
}

func (h *eventHeap) less(i, j int) bool {
	if h.items[i].at != h.items[j].at {
		return h.items[i].at < h.items[j].at
	}
	return h.items[i].seq < h.items[j].seq
}

func (h *eventHeap) push(ev event) {
	h.items = append(h.items, ev)
	i := len(h.items) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			break
		}
		h.items[i], h.items[parent] = h.items[parent], h.items[i]
		i = parent
	}
}

func (h *eventHeap) pop() event {
	items := h.items
	n := len(items) - 1
	top := items[0]
	items[0] = items[n]
	items[n] = event{} // release the closure so the backing array doesn't pin it
	h.items = items[:n]
	h.siftDown(0)
	return top
}

func (h *eventHeap) siftDown(i int) {
	n := len(h.items)
	for {
		child := 2*i + 1
		if child >= n {
			return
		}
		if r := child + 1; r < n && h.less(r, child) {
			child = r
		}
		if !h.less(child, i) {
			return
		}
		h.items[i], h.items[child] = h.items[child], h.items[i]
		i = child
	}
}

// tickerHeap is a binary min-heap of live tickers ordered by
// (next fire time, registration order), with position bookkeeping so
// RemoveTicker is O(log n). The sort keys live inline in the slots, so
// sift comparisons stay on contiguous memory instead of chasing Ticker
// pointers.
type tickerHeap struct {
	items []tickerSlot
}

type tickerSlot struct {
	next ticks.T
	id   int
	t    *Ticker
}

func (h *tickerHeap) less(i, j int) bool {
	return h.slotLess(&h.items[i], &h.items[j])
}

func (h *tickerHeap) slotLess(a, b *tickerSlot) bool {
	if a.next != b.next {
		return a.next < b.next
	}
	return a.id < b.id
}

func (h *tickerHeap) swap(i, j int) {
	h.items[i], h.items[j] = h.items[j], h.items[i]
	h.items[i].t.pos = i
	h.items[j].t.pos = j
}

func (h *tickerHeap) push(t *Ticker, next ticks.T) {
	t.pos = len(h.items)
	h.items = append(h.items, tickerSlot{next: next, id: t.id, t: t})
	h.siftUp(t.pos)
}

func (h *tickerHeap) siftUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			return
		}
		h.swap(i, parent)
		i = parent
	}
}

// siftDown percolates a hole instead of swapping pairwise: children
// shift up one write at a time and the displaced slot lands once at its
// final position.
func (h *tickerHeap) siftDown(i int) {
	n := len(h.items)
	moving := h.items[i]
	for {
		child := 2*i + 1
		if child >= n {
			break
		}
		if r := child + 1; r < n && h.slotLess(&h.items[r], &h.items[child]) {
			child = r
		}
		if !h.slotLess(&h.items[child], &moving) {
			break
		}
		h.items[i] = h.items[child]
		h.items[i].t.pos = i
		i = child
	}
	h.items[i] = moving
	moving.t.pos = i
}

func (h *tickerHeap) fix(i int) {
	h.siftDown(i)
	h.siftUp(i)
}

func (h *tickerHeap) remove(t *Ticker) {
	i := t.pos
	if i < 0 {
		return
	}
	n := len(h.items) - 1
	if i != n {
		h.swap(i, n)
	}
	h.items[n] = tickerSlot{}
	h.items = h.items[:n]
	t.pos = -1
	if i < n {
		h.fix(i)
	}
}

// NewEngine returns an engine at time zero.
func NewEngine() *Engine { return &Engine{firing: -1} }

// Now reports the current simulated time.
func (e *Engine) Now() ticks.T { return e.now }

// Steps reports how many distinct timesteps Run has processed — the
// engine-work metric that demand-driven clocking shrinks. A per-cycle
// system pays one step per cycle; an eliding system pays one step per
// cycle in which some component actually had work.
func (e *Engine) Steps() int64 { return e.steps }

// AddTicker registers fn to run every period ticks, starting at time offset
// (clamped to the present on a warm engine, so time never runs backwards),
// and returns a handle RemoveTicker accepts. Tickers due at the same
// timestep fire in registration order, after that timestep's one-shot
// events.
func (e *Engine) AddTicker(period, offset ticks.T, fn func(now ticks.T)) *Ticker {
	if period <= 0 {
		panic("sim: ticker period must be positive")
	}
	if offset < e.now {
		offset = e.now
	}
	t := &Ticker{period: period, phase: offset % period, id: e.nextID, fn: fn}
	e.nextID++
	e.tickers.push(t, offset)
	return t
}

// RemoveTicker cancels a ticker; removing one twice, or removing a paused
// ticker, is safe.
func (e *Engine) RemoveTicker(t *Ticker) {
	t.paused = false
	e.tickers.remove(t)
}

// PauseTicker parks a ticker: it leaves the schedule but stays resumable
// via RescheduleTicker. Pausing an already-paused or removed ticker is a
// no-op. Components use this when they are quiescent with no computable
// deadline — a wakeup event must call RescheduleTicker to re-arm them.
func (e *Engine) PauseTicker(t *Ticker) {
	if t.pos < 0 {
		return
	}
	e.tickers.remove(t)
	t.paused = true
}

// RescheduleTicker moves t's next fire to the earliest slot of its period
// grid at or after at that this timestep has not already passed. Fire
// times stay congruent to the ticker's original offset modulo its period,
// so a rescheduled ticker fires exactly where the per-cycle baseline
// would have ticked; and a slot at the current timestep whose turn in
// registration order has already gone by is never reused, so wakeups
// triggered by later-registered tickers land on the next slot — again
// exactly what a ticker that had been ticking all along would observe.
//
// It serves both directions: deferring past provably-idle cycles
// (fast-forward) and pulling a deferred or paused ticker back up when an
// event creates work (wakeup). Rescheduling a removed ticker is a no-op.
func (e *Engine) RescheduleTicker(t *Ticker, at ticks.T) {
	next := e.nextSlot(t, at)
	switch {
	case t.paused:
		t.paused = false
		e.tickers.push(t, next)
	case t.pos >= 0:
		e.tickers.items[t.pos].next = next
		e.tickers.fix(t.pos)
	}
}

// nextSlot computes the earliest grid-aligned fire time >= at that has
// not already been passed over during the current timestep.
func (e *Engine) nextSlot(t *Ticker, at ticks.T) ticks.T {
	if at < e.now {
		at = e.now
	}
	next := at
	if rem := (next - t.phase) % t.period; rem < 0 {
		next -= rem // before the grid anchor: clamp up to it
	} else if rem != 0 {
		next += t.period - rem
	}
	if next == e.now && e.firing >= 0 && t.id < e.firing {
		// The tick phase of this timestep already moved past t's slot
		// (tickers fire in registration order): the per-cycle baseline
		// would next serve t one period later.
		next += t.period
	}
	return next
}

// After schedules fn to run once, delay ticks from now.
func (e *Engine) After(delay ticks.T, fn func(now ticks.T)) {
	e.events.seq++
	e.events.push(event{at: e.now + delay, seq: e.events.seq, fn: fn})
}

// At schedules fn to run once at absolute time at (which must not be in the
// past).
func (e *Engine) At(at ticks.T, fn func(now ticks.T)) {
	if at < e.now {
		panic("sim: cannot schedule event in the past")
	}
	e.events.seq++
	e.events.push(event{at: at, seq: e.events.seq, fn: fn})
}

// Stop makes the current Run call return after the present timestamp
// finishes processing.
func (e *Engine) Stop() { e.stopped = true }

// Run advances time until the deadline (inclusive of work scheduled exactly
// at it). Idle gaps with no tickers or events are skipped in O(1).
func (e *Engine) Run(until ticks.T) {
	e.stopped = false
	for !e.stopped {
		next := until + 1
		if len(e.tickers.items) > 0 && e.tickers.items[0].next < next {
			next = e.tickers.items[0].next
		}
		if len(e.events.items) > 0 && e.events.items[0].at < next {
			next = e.events.items[0].at
		}
		if next > until {
			e.now = until
			return
		}
		e.now = next
		e.steps++
		for len(e.events.items) > 0 && e.events.items[0].at == next {
			ev := e.events.pop()
			ev.fn(next)
		}
		for len(e.tickers.items) > 0 && e.tickers.items[0].next == next {
			t := e.tickers.items[0].t
			e.tickers.items[0].next += t.period
			e.tickers.fix(0)
			e.firing = t.id
			t.fn(next)
		}
		e.firing = -1
	}
}
