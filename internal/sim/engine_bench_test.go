package sim

import (
	"testing"

	"pracsim/internal/ticks"
)

// BenchmarkEngineDenseTickers is the heap's worst case: 64 tickers
// firing ~2.3 times per tick on average, so almost every timestep
// reorders the heap root.
func BenchmarkEngineDenseTickers(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e := NewEngine()
		var fired int64
		for t := 0; t < 64; t++ {
			e.AddTicker(ticks.T(7+t), ticks.T(t), func(ticks.T) { fired++ })
		}
		e.Run(100_000)
		if fired == 0 {
			b.Fatal("no ticks")
		}
	}
}

// BenchmarkEngineSparseTickers is the realistic wide-system shape —
// many mostly-idle periodic timers (per-bank maintenance, refresh
// windows) where a per-step linear scan pays for every registered
// ticker while the heap pays only log n for the one that fires.
func BenchmarkEngineSparseTickers(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e := NewEngine()
		var fired int64
		for t := 0; t < 256; t++ {
			e.AddTicker(ticks.T(1009+7*t), ticks.T(13*t), func(ticks.T) { fired++ })
		}
		e.Run(1_000_000)
		if fired == 0 {
			b.Fatal("no ticks")
		}
	}
}

// benchmarkSystemClock runs the paper's system on a memory-bound
// workload under one clocking and reports engine steps and elided cycles
// as metrics — the idle-heavy regime demand-driven clocking targets.
func benchmarkSystemClock(b *testing.B, clock Clocking) {
	b.ReportAllocs()
	var steps, elided, perCycleSteps int64
	for i := 0; i < b.N; i++ {
		cfg := DefaultSystemConfig(1024)
		cfg.Workload = "433.milc"
		cfg.Clock = clock
		sys, err := NewSystem(cfg)
		if err != nil {
			b.Fatal(err)
		}
		res, err := sys.Run(5_000, 15_000)
		if err != nil {
			b.Fatal(err)
		}
		steps += res.Telemetry.EngineSteps
		elided += res.Telemetry.ElidedCycles()
		perCycleSteps += int64(res.Telemetry.SimTicks)
	}
	b.ReportMetric(float64(steps)/float64(b.N), "engine-steps")
	b.ReportMetric(float64(elided)/float64(b.N), "elided-cycles")
	b.ReportMetric(float64(perCycleSteps)/float64(steps), "step-reduction-x")
}

// BenchmarkEngineElisionDemand vs BenchmarkEngineElisionPerCycle is the
// acceptance pair: on an idle-heavy workload the demand clocking must
// show >= 2x fewer engine steps (see step-reduction-x) at bit-identical
// output (TestDifferentialDeterminism).
func BenchmarkEngineElisionDemand(b *testing.B)   { benchmarkSystemClock(b, ClockDemand) }
func BenchmarkEngineElisionPerCycle(b *testing.B) { benchmarkSystemClock(b, ClockPerCycle) }

// BenchmarkEngineEventChurn measures one-shot scheduling throughput:
// every fired event schedules the next, so the heap sees a
// push/pop per step. The concrete-typed heap makes the push
// allocation-free beyond the closure itself.
func BenchmarkEngineEventChurn(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e := NewEngine()
		var fired int64
		var reschedule func(now ticks.T)
		reschedule = func(now ticks.T) {
			fired++
			e.After(3, reschedule)
		}
		for k := 0; k < 16; k++ {
			e.After(ticks.T(k), reschedule)
		}
		e.Run(50_000)
		if fired == 0 {
			b.Fatal("no events")
		}
	}
}
