package sim

import (
	"testing"

	"pracsim/internal/ticks"
)

func TestPauseStopsFiringResumeRealigns(t *testing.T) {
	e := NewEngine()
	var times []ticks.T
	var tk *Ticker
	tk = e.AddTicker(4, 0, func(now ticks.T) {
		times = append(times, now)
		if now == 8 {
			e.PauseTicker(tk)
		}
	})
	e.Run(40)
	// Fired at 0, 4, 8 then paused.
	if len(times) != 3 || times[2] != 8 {
		t.Fatalf("fired at %v, want [0 4 8]", times)
	}
	// Resume at an off-grid instant: the next fire must realign to the
	// ticker's period grid, never land between slots.
	e.RescheduleTicker(tk, 53)
	e.Run(70)
	want := []ticks.T{0, 4, 8, 56, 60, 64, 68}
	if len(times) != len(want) {
		t.Fatalf("fired at %v, want %v after off-grid resume at 53", times, want)
	}
	for i := range want {
		if times[i] != want[i] {
			t.Fatalf("fired at %v, want %v", times, want)
		}
	}
}

func TestPauseTwiceAndResumeRemovedTickerAreSafe(t *testing.T) {
	e := NewEngine()
	count := 0
	tk := e.AddTicker(2, 0, func(ticks.T) { count++ })
	e.PauseTicker(tk)
	e.PauseTicker(tk) // double pause: no-op
	e.Run(10)
	if count != 0 {
		t.Fatalf("paused ticker fired %d times", count)
	}
	// Removing a paused ticker must stick: a later resume is a no-op.
	e.RemoveTicker(tk)
	e.RescheduleTicker(tk, 20)
	e.Run(40)
	if count != 0 {
		t.Fatalf("removed ticker fired %d times after resume attempt", count)
	}
}

func TestRemoveWhilePausedThenRemoveAgain(t *testing.T) {
	e := NewEngine()
	tk := e.AddTicker(3, 0, func(ticks.T) {})
	e.PauseTicker(tk)
	e.RemoveTicker(tk)
	e.RemoveTicker(tk) // idempotent
	e.PauseTicker(tk)  // pausing a removed ticker: no-op
	e.Run(30)          // must not panic or fire
}

func TestDeferSkipsIdleWindowAndKeepsGrid(t *testing.T) {
	e := NewEngine()
	var times []ticks.T
	var tk *Ticker
	tk = e.AddTicker(4, 0, func(now ticks.T) {
		times = append(times, now)
		if now == 4 {
			e.RescheduleTicker(tk, 30) // skip ahead; 30 is off-grid
		}
	})
	e.Run(40)
	want := []ticks.T{0, 4, 32, 36, 40}
	if len(times) != len(want) {
		t.Fatalf("fired at %v, want %v", times, want)
	}
	for i := range want {
		if times[i] != want[i] {
			t.Fatalf("fired at %v, want %v", times, want)
		}
	}
}

// TestEventInSkippedWindowCanWakeTicker is the event-scheduled-into-a-
// skipped-window edge: the engine fast-forwards over the parked gap, the
// event still fires at its exact time, and waking the ticker from inside
// the event fires the ticker at that same timestep — events precede
// tickers, so the slot has not been passed.
func TestEventInSkippedWindowCanWakeTicker(t *testing.T) {
	e := NewEngine()
	var fired []ticks.T
	var tk *Ticker
	tk = e.AddTicker(4, 0, func(now ticks.T) {
		fired = append(fired, now)
		if now == 0 {
			e.PauseTicker(tk)
		}
	})
	var eventAt ticks.T = -1
	e.At(18, func(now ticks.T) {
		eventAt = now
		e.RescheduleTicker(tk, now) // wake from event context
	})
	e.Run(25)
	if eventAt != 18 {
		t.Fatalf("event fired at %v, want 18 (events must fire inside skipped windows)", eventAt)
	}
	// Grid slot for period 4 at/after 18 is 20.
	if len(fired) != 3 || fired[1] != 20 || fired[2] != 24 {
		t.Fatalf("ticker fired at %v, want [0 20 24]", fired)
	}
}

// TestWakeFromLaterTickerSkipsPassedSlot pins the ordering rule: a ticker
// woken at a shared timestep by a later-registered ticker must not fire
// at that timestep (its registration-order slot has already passed), but
// a wake for a future time lands normally.
func TestWakeFromLaterTickerSkipsPassedSlot(t *testing.T) {
	e := NewEngine()
	var order []string
	var first *Ticker
	first = e.AddTicker(4, 0, func(now ticks.T) {
		order = append(order, "A@"+now.String())
		if now == 0 {
			e.PauseTicker(first)
		}
	})
	e.AddTicker(4, 0, func(now ticks.T) {
		order = append(order, "B@"+now.String())
		if now == 8 {
			e.RescheduleTicker(first, now) // A's slot at 8 already passed
		}
	})
	e.Run(13)
	want := []string{"A@0.00ns", "B@0.00ns", "B@1.00ns", "B@2.00ns", "A@3.00ns", "B@3.00ns"}
	if len(order) != len(want) {
		t.Fatalf("order = %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

// TestFastForwardWithAllTickersPaused: a fully-parked system must jump
// straight to the deadline in O(1), exactly like an empty engine.
func TestFastForwardWithAllTickersPaused(t *testing.T) {
	e := NewEngine()
	count := 0
	tk := e.AddTicker(1, 0, func(ticks.T) { count++ })
	e.PauseTicker(tk)
	steps := e.Steps()
	e.Run(1_000_000_000)
	if e.Now() != 1_000_000_000 {
		t.Fatalf("Now() = %v", e.Now())
	}
	if count != 0 {
		t.Fatalf("paused ticker fired %d times", count)
	}
	if e.Steps() != steps {
		t.Fatalf("engine processed %d steps across an empty window", e.Steps()-steps)
	}
}

// TestStepsCountsProcessedTimesteps: one step per distinct time with work.
func TestStepsCountsProcessedTimesteps(t *testing.T) {
	e := NewEngine()
	e.AddTicker(10, 0, func(ticks.T) {})
	e.At(5, func(ticks.T) {})
	e.At(10, func(ticks.T) {}) // same timestep as a ticker fire: one step
	e.Run(25)
	if e.Steps() != 4 { // t = 0, 5, 10, 20
		t.Fatalf("Steps() = %d, want 4", e.Steps())
	}
}

// TestResumeBeforeFirstFireClampsToGridAnchor: rescheduling to a time
// before the ticker's phase anchor must land on the anchor, not earlier.
func TestResumeBeforeFirstFireClampsToGridAnchor(t *testing.T) {
	e := NewEngine()
	var first ticks.T = -1
	var tk *Ticker
	tk = e.AddTicker(10, 7, func(now ticks.T) {
		if first < 0 {
			first = now
		}
	})
	e.PauseTicker(tk)
	e.RescheduleTicker(tk, 0)
	e.Run(40)
	if first != 7 {
		t.Fatalf("first fire at %v, want 7 (the phase anchor)", first)
	}
}
