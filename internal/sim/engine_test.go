package sim

import (
	"testing"
	"testing/quick"

	"pracsim/internal/ticks"
)

func TestTickerCadence(t *testing.T) {
	e := NewEngine()
	var times []ticks.T
	e.AddTicker(10, 0, func(now ticks.T) { times = append(times, now) })
	e.Run(35)
	want := []ticks.T{0, 10, 20, 30}
	if len(times) != len(want) {
		t.Fatalf("ticks at %v, want %v", times, want)
	}
	for i := range want {
		if times[i] != want[i] {
			t.Fatalf("ticks at %v, want %v", times, want)
		}
	}
}

func TestTickerOffset(t *testing.T) {
	e := NewEngine()
	var first ticks.T = -1
	e.AddTicker(10, 7, func(now ticks.T) {
		if first < 0 {
			first = now
		}
	})
	e.Run(40)
	if first != 7 {
		t.Fatalf("first tick at %v, want 7", first)
	}
}

func TestAfterAndAtOrdering(t *testing.T) {
	e := NewEngine()
	var order []int
	e.After(5, func(ticks.T) { order = append(order, 1) })
	e.At(3, func(ticks.T) { order = append(order, 0) })
	e.After(5, func(ticks.T) { order = append(order, 2) }) // same time as first: FIFO
	e.Run(10)
	if len(order) != 3 || order[0] != 0 || order[1] != 1 || order[2] != 2 {
		t.Fatalf("order = %v, want [0 1 2]", order)
	}
}

func TestEventsCanScheduleEvents(t *testing.T) {
	e := NewEngine()
	var hits []ticks.T
	e.After(2, func(now ticks.T) {
		hits = append(hits, now)
		e.After(3, func(now ticks.T) { hits = append(hits, now) })
	})
	e.Run(10)
	if len(hits) != 2 || hits[0] != 2 || hits[1] != 5 {
		t.Fatalf("hits = %v, want [2 5]", hits)
	}
}

func TestStop(t *testing.T) {
	e := NewEngine()
	count := 0
	e.AddTicker(1, 0, func(now ticks.T) {
		count++
		if count == 5 {
			e.Stop()
		}
	})
	e.Run(100)
	if count != 5 {
		t.Fatalf("count = %d, want 5 (engine should stop)", count)
	}
	if e.Now() != 4 {
		t.Fatalf("Now() = %v, want 4", e.Now())
	}
}

func TestIdleSkipReachesDeadline(t *testing.T) {
	e := NewEngine()
	e.Run(1_000_000_000) // no work: must return immediately
	if e.Now() != 1_000_000_000 {
		t.Fatalf("Now() = %v", e.Now())
	}
}

func TestPastSchedulingPanics(t *testing.T) {
	e := NewEngine()
	e.After(10, func(ticks.T) {})
	e.Run(10)
	defer func() {
		if recover() == nil {
			t.Fatal("At() in the past did not panic")
		}
	}()
	e.At(5, func(ticks.T) {})
}

func TestZeroPeriodTickerPanics(t *testing.T) {
	e := NewEngine()
	defer func() {
		if recover() == nil {
			t.Fatal("zero period accepted")
		}
	}()
	e.AddTicker(0, 0, func(ticks.T) {})
}

func TestAddTickerOnWarmEngineNeverRewindsTime(t *testing.T) {
	e := NewEngine()
	e.Run(100)
	var first ticks.T = -1
	e.AddTicker(10, 0, func(now ticks.T) { // stale offset: clamped to Now()
		if first < 0 {
			first = now
		}
	})
	e.Run(130)
	if first != 100 {
		t.Fatalf("first tick at %v, want 100 (offset clamped to the present)", first)
	}
	if e.Now() != 130 {
		t.Fatalf("Now() = %v, want 130", e.Now())
	}
}

func TestRemoveTicker(t *testing.T) {
	e := NewEngine()
	count := 0
	tk := e.AddTicker(10, 0, func(ticks.T) { count++ })
	e.Run(25) // fires at 0, 10, 20
	e.RemoveTicker(tk)
	e.RemoveTicker(tk) // removing twice is a no-op
	e.Run(100)
	if count != 3 {
		t.Fatalf("ticker fired %d times, want 3 (removed after deadline 25)", count)
	}
}

func TestRemoveOtherTickerKeepsCadence(t *testing.T) {
	e := NewEngine()
	var fired []int
	var victim *Ticker
	e.AddTicker(10, 0, func(ticks.T) { fired = append(fired, 0) })
	victim = e.AddTicker(10, 5, func(ticks.T) { fired = append(fired, 1) })
	e.AddTicker(10, 0, func(now ticks.T) {
		fired = append(fired, 2)
		if now == 10 {
			e.RemoveTicker(victim)
		}
	})
	e.Run(30) // ticker 1 fires only at 5, removed before its t=15 slot
	want := []int{0, 2, 1, 0, 2, 0, 2, 0, 2}
	if len(fired) != len(want) {
		t.Fatalf("fired = %v, want %v", fired, want)
	}
	for i := range want {
		if fired[i] != want[i] {
			t.Fatalf("fired = %v, want %v", fired, want)
		}
	}
}

func TestTickersFireInRegistrationOrder(t *testing.T) {
	e := NewEngine()
	var order []int
	// Register in an order that differs from any heap-internal layout.
	for _, id := range []int{0, 1, 2, 3, 4} {
		id := id
		e.AddTicker(10, 0, func(ticks.T) { order = append(order, id) })
	}
	e.After(10, func(ticks.T) { order = append(order, -1) }) // events precede tickers
	e.Run(10)
	want := []int{0, 1, 2, 3, 4, -1, 0, 1, 2, 3, 4}
	if len(order) != len(want) {
		t.Fatalf("order = %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

// Property: events always fire in timestamp order regardless of insertion
// order, and all events within the horizon fire exactly once.
func TestEventOrderProperty(t *testing.T) {
	prop := func(delays []uint16) bool {
		e := NewEngine()
		var fired []ticks.T
		n := 0
		for _, d := range delays {
			at := ticks.T(d % 1000)
			e.At(at, func(now ticks.T) { fired = append(fired, now) })
			n++
		}
		e.Run(1000)
		if len(fired) != n {
			return false
		}
		for i := 1; i < len(fired); i++ {
			if fired[i] < fired[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
