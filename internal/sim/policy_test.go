package sim

import (
	"testing"

	"pracsim/internal/ticks"
)

func TestPolicyKindStrings(t *testing.T) {
	want := map[PolicyKind]string{
		PolicyABOOnly: "ABO-Only",
		PolicyACB:     "ABO+ACB-RFM",
		PolicyTPRAC:   "TPRAC",
		PolicyNone:    "Baseline",
	}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("%d.String() = %q, want %q", int(k), k.String(), s)
		}
	}
	if PolicyKind(42).String() == "" {
		t.Error("unknown kind should still render")
	}
}

func TestBaselineDisablesAlerts(t *testing.T) {
	cfg := DefaultSystemConfig(128) // ultra-low threshold
	cfg.LLCSizeKB = 1024
	cfg.Policy = PolicyNone
	sys, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.Run(2_000, 8_000)
	if err != nil {
		t.Fatal(err)
	}
	if res.DRAM.AlertsAsserted != 0 {
		t.Fatalf("baseline raised %d alerts at NRH=128; PolicyNone must disable the ABO path", res.DRAM.AlertsAsserted)
	}
}

func TestTREFCoDesignReducesTBRFMs(t *testing.T) {
	run := func(trefEvery int, skip bool) (int64, int64) {
		cfg := DefaultSystemConfig(1024)
		cfg.LLCSizeKB = 1024
		cfg.Policy = PolicyTPRAC
		cfg.TBWindow = cfg.DRAM.Timing.TREFI * 2
		cfg.Ctrl.TREFEvery = trefEvery
		cfg.SkipOnTREF = skip
		sys, err := NewSystem(cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := sys.Run(2_000, 10_000)
		if err != nil {
			t.Fatal(err)
		}
		return res.Ctrl.PolicyRFMs, res.Ctrl.TREFs
	}
	without, _ := run(0, false)
	with, trefs := run(1, true)
	if trefs == 0 {
		t.Fatal("no targeted refreshes issued")
	}
	if with >= without {
		t.Fatalf("TB-RFMs with TREF co-design (%d) not below without (%d)", with, without)
	}
}

func TestRunResultAccounting(t *testing.T) {
	cfg := DefaultSystemConfig(1024)
	cfg.LLCSizeKB = 1024
	sys, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.Run(1_000, 6_000)
	if err != nil {
		t.Fatal(err)
	}
	if res.MeasuredTime <= 0 {
		t.Error("no measured time")
	}
	if res.Policy != "ABO-Only" { // PolicyNone wraps the ABO-Only policy object
		t.Errorf("policy name = %q", res.Policy)
	}
	// Row hits + misses track serviced demand reads and writes. Requests
	// can straddle the warmup/measurement boundary in either direction,
	// so allow slack up to the controller queue capacity.
	served := res.Ctrl.RowHits + res.Ctrl.RowMisses
	issued := res.Ctrl.Reads + res.Ctrl.Writes - res.Ctrl.WriteForward
	if served > issued+128 || issued > served+128 {
		t.Errorf("served %d column ops vs %d requests issued; beyond boundary slack", served, issued)
	}
	if res.MeasuredTime > ticks.FromMS(10) {
		t.Errorf("measured time %v implausibly long for 6K instructions", res.MeasuredTime)
	}
}
