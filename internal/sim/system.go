package sim

import (
	"fmt"
	"time"

	"pracsim/internal/cache"
	"pracsim/internal/cpu"
	"pracsim/internal/dram"
	"pracsim/internal/memctrl"
	"pracsim/internal/mitigation"
	"pracsim/internal/ticks"
	"pracsim/internal/trace"
)

// PolicyKind selects the mitigation policy a System runs with.
type PolicyKind int

const (
	// PolicyABOOnly relies purely on the Alert Back-Off protocol.
	PolicyABOOnly PolicyKind = iota
	// PolicyACB adds JEDEC Activation-Based RFMs at the BAT threshold.
	PolicyACB
	// PolicyTPRAC is the paper's Timing-Based RFM defense.
	PolicyTPRAC
	// PolicyNone disables proactive RFMs and the ABO protocol entirely —
	// the paper's normalization baseline (PRAC counters without Alerts).
	PolicyNone
	// PolicyTPRACpb is the Section 7.2 extension: Timing-Based RFMs
	// issued as per-bank RFMpb commands rotating through the banks.
	PolicyTPRACpb
)

// String names the policy for experiment output.
func (k PolicyKind) String() string {
	switch k {
	case PolicyABOOnly:
		return "ABO-Only"
	case PolicyACB:
		return "ABO+ACB-RFM"
	case PolicyTPRAC:
		return "TPRAC"
	case PolicyNone:
		return "Baseline"
	case PolicyTPRACpb:
		return "TPRAC-pb"
	default:
		return fmt.Sprintf("PolicyKind(%d)", int(k))
	}
}

// SystemConfig assembles the paper's Table 3 machine.
type SystemConfig struct {
	Cores int
	Core  cpu.Config

	L1DSizeKB, L1DWays int
	L2SizeKB, L2Ways   int
	LLCSizeKB, LLCWays int
	L1DLatency         ticks.T
	L2Latency          ticks.T
	LLCLatency         ticks.T
	MSHRsPerCore       int
	Prefetch           bool

	DRAM dram.Config
	Ctrl memctrl.Config

	Policy      PolicyKind
	TBWindow    ticks.T // TPRAC: TB-RFM interval
	SkipOnTREF  bool    // TPRAC: co-design with targeted refreshes
	BAT         int     // ACB: bank activation threshold
	MOPGroup    int     // consecutive lines per bank visit
	MapperXOR   bool
	Workload    string // catalog name; all cores run copies (homogeneous mix)
	WorkloadMix []string

	// Clock selects the clocking model; the zero value is ClockDemand
	// (idle-cycle elision). Results are bit-identical across clockings.
	Clock Clocking
}

// DefaultSystemConfig returns the paper's evaluated system at a given
// Back-Off threshold: 4 cores at 4 GHz, 48KB/512KB/8MB caches, MOP mapping,
// FR-FCFS cap 4, 32Gb DDR5-8000B.
func DefaultSystemConfig(nbo int) SystemConfig {
	return SystemConfig{
		Cores:        4,
		Core:         cpu.DefaultConfig(),
		L1DSizeKB:    48,
		L1DWays:      12,
		L2SizeKB:     512,
		L2Ways:       8,
		LLCSizeKB:    8 * 1024,
		LLCWays:      16,
		L1DLatency:   5 * cpu.CyclePeriod,
		L2Latency:    10 * cpu.CyclePeriod,
		LLCLatency:   20 * cpu.CyclePeriod,
		MSHRsPerCore: 64,
		Prefetch:     true,
		DRAM:         dram.DefaultConfig(nbo),
		Ctrl:         memctrl.DefaultConfig(),
		Policy:       PolicyNone,
		MOPGroup:     4,
		Workload:     "433.milc",
	}
}

// System is an assembled simulated machine.
type System struct {
	Engine *Engine
	Cores  []*cpu.Core
	L1s    []*cache.Cache
	L2s    []*cache.Cache
	LLC    *cache.Cache
	Ctrl   *memctrl.Controller
	Mod    *dram.Module

	cfg       SystemConfig
	elide     bool
	ctrlClock *ControllerClock
}

// memAdapter bridges the LLC to the memory controller, buffering refused
// writebacks and retrying them each controller cycle.
type memAdapter struct {
	ctrl      *memctrl.Controller
	pendingWB []uint64
}

func (a *memAdapter) Fetch(line uint64, now ticks.T, done func(at ticks.T)) bool {
	return a.ctrl.Enqueue(&memctrl.Request{Line: line, OnComplete: done}, now)
}

func (a *memAdapter) WriteBack(line uint64, now ticks.T) bool {
	if len(a.pendingWB) == 0 && a.ctrl.Enqueue(&memctrl.Request{Line: line, Write: true}, now) {
		return true
	}
	a.pendingWB = append(a.pendingWB, line)
	return true
}

func (a *memAdapter) retry(now ticks.T) {
	for len(a.pendingWB) > 0 {
		if !a.ctrl.Enqueue(&memctrl.Request{Line: a.pendingWB[0], Write: true}, now) {
			return
		}
		a.pendingWB = a.pendingWB[1:]
	}
}

// NewSystem builds and wires a System.
func NewSystem(cfg SystemConfig) (*System, error) {
	if cfg.Cores <= 0 {
		return nil, fmt.Errorf("sim: core count must be positive, got %d", cfg.Cores)
	}
	dcfg := cfg.DRAM
	if cfg.Policy == PolicyNone {
		dcfg.PRAC.Enabled = true // counters still run; Alerts do not
		dcfg.PRAC.NBO = 1 << 30  // effectively never alert
	}
	mod, err := dram.New(dcfg)
	if err != nil {
		return nil, err
	}
	mapper, err := memctrl.NewMOPMapper(dcfg.Org, cfg.MOPGroup, cfg.MapperXOR)
	if err != nil {
		return nil, err
	}
	policy, err := buildPolicy(cfg, dcfg)
	if err != nil {
		return nil, err
	}
	ctrl, err := memctrl.New(cfg.Ctrl, mod, mapper, policy)
	if err != nil {
		return nil, err
	}

	eng := NewEngine()
	adapter := &memAdapter{ctrl: ctrl}
	lineBytes := dcfg.Org.LineBytes

	llc, err := cache.New(cache.Config{
		Name:    "LLC",
		Sets:    cache.SetsFor(cfg.LLCSizeKB*cache.KB, cfg.LLCWays, lineBytes),
		Ways:    cfg.LLCWays,
		Latency: cfg.LLCLatency,
		Repl:    cache.SRRIP,
		MSHRs:   cfg.MSHRsPerCore * cfg.Cores,
	}, adapter)
	if err != nil {
		return nil, err
	}

	sys := &System{
		Engine: eng, LLC: llc, Ctrl: ctrl, Mod: mod,
		cfg:   cfg,
		elide: cfg.Clock != ClockPerCycle,
	}

	names := cfg.WorkloadMix
	if len(names) == 0 {
		names = make([]string, cfg.Cores)
		for i := range names {
			names[i] = cfg.Workload
		}
	}
	if len(names) != cfg.Cores {
		return nil, fmt.Errorf("sim: workload mix has %d entries for %d cores", len(names), cfg.Cores)
	}

	lines := mapper.Lines()
	for i := 0; i < cfg.Cores; i++ {
		l2, err := cache.New(cache.Config{
			Name:    fmt.Sprintf("L2.%d", i),
			Sets:    cache.SetsFor(cfg.L2SizeKB*cache.KB, cfg.L2Ways, lineBytes),
			Ways:    cfg.L2Ways,
			Latency: cfg.L2Latency,
			Repl:    cache.LRU,
			MSHRs:   cfg.MSHRsPerCore,
		}, llc)
		if err != nil {
			return nil, err
		}
		l1, err := cache.New(cache.Config{
			Name:    fmt.Sprintf("L1D.%d", i),
			Sets:    cache.SetsFor(cfg.L1DSizeKB*cache.KB, cfg.L1DWays, lineBytes),
			Ways:    cfg.L1DWays,
			Latency: cfg.L1DLatency,
			Repl:    cache.LRU,
			MSHRs:   16,
		}, l2)
		if err != nil {
			return nil, err
		}
		if cfg.Prefetch {
			if err := l1.AttachIPStride(256, 2); err != nil {
				return nil, err
			}
		}
		stream, err := trace.NewWorkloadStream(names[i])
		if err != nil {
			return nil, err
		}
		offset := uint64(i) * (lines / uint64(cfg.Cores))
		core, err := cpu.New(i, cfg.Core, stream, l1, offset, lines)
		if err != nil {
			return nil, err
		}
		sys.Cores = append(sys.Cores, core)
		sys.L1s = append(sys.L1s, l1)
		sys.L2s = append(sys.L2s, l2)
	}

	// The controller clock domain: the adapter's writeback retry runs
	// before each controller tick, and buffered writebacks veto parking.
	sys.ctrlClock = NewControllerClock(eng, ctrl, func(now ticks.T) bool {
		adapter.retry(now)
		return len(adapter.pendingWB) == 0
	}, cfg.Clock)
	for _, core := range sys.Cores {
		core.SetRetrySlot(sys.ctrlClock.RetrySlot)
	}
	return sys, nil
}

func buildPolicy(cfg SystemConfig, dcfg dram.Config) (mitigation.Policy, error) {
	switch cfg.Policy {
	case PolicyABOOnly, PolicyNone:
		return mitigation.NewABOOnly(), nil
	case PolicyACB:
		return mitigation.NewACB(dcfg.Org.Banks(), cfg.BAT)
	case PolicyTPRAC:
		return mitigation.NewTPRAC(cfg.TBWindow, cfg.SkipOnTREF)
	case PolicyTPRACpb:
		return mitigation.NewTPRACPerBank(cfg.TBWindow, dcfg.Org.Banks())
	default:
		return nil, fmt.Errorf("sim: unknown policy %d", int(cfg.Policy))
	}
}

// Telemetry describes how a simulation executed — wall-clock cost,
// simulated-time throughput and idle-elision wins. It is the one part of
// a RunResult that legitimately varies between clockings, worker counts
// and machines; DiffResults ignores it.
type Telemetry struct {
	WallNS      int64   // wall-clock duration of the whole Run (warmup + measured)
	SimTicks    ticks.T // simulated time the Run advanced
	TicksPerSec float64 // simulated ticks per wall-clock second
	EngineSteps int64   // engine timesteps actually processed
	// ElidedCoreCycles and ElidedCtrlCycles count cycles that
	// demand-driven clocking accounted without simulating (zero under
	// ClockPerCycle).
	ElidedCoreCycles int64
	ElidedCtrlCycles int64
	Clock            string
}

// ElidedCycles reports the total skipped-cycle count across clock domains.
func (t Telemetry) ElidedCycles() int64 { return t.ElidedCoreCycles + t.ElidedCtrlCycles }

// RunResult summarizes one measured simulation interval.
type RunResult struct {
	Policy       string
	Cycles       int64
	Instructions int64
	IPCSum       float64 // sum of per-core IPCs
	PerCoreIPC   []float64
	RBMPKI       float64
	Ctrl         memctrl.Stats
	DRAM         dram.Stats
	MeasuredTime ticks.T
	Telemetry    Telemetry
}

// Run executes warmup then measured instructions on every core and reports
// measured-interval statistics. Cores that finish early keep their final
// stats; the run ends when every core has retired its measured budget.
func (s *System) Run(warmup, measured int64) (RunResult, error) {
	if measured <= 0 {
		return RunResult{}, fmt.Errorf("sim: measured instruction budget must be positive")
	}
	deadline := ticks.FromMS(500)

	wallStart := time.Now()
	runStart := s.Engine.Now()
	stepsBase := s.Engine.Steps()
	ctrlElidedBase := s.ctrlClock.Elided(runStart)
	var coreElided int64

	target := warmup
	if target > 0 {
		if err := s.runUntilRetired(target, deadline); err != nil {
			return RunResult{}, err
		}
	}
	ctrlBase := s.Ctrl.Stats()
	dramBase := s.Mod.Stats()
	startTime := s.Engine.Now()
	for _, c := range s.Cores {
		coreElided += c.Stats().ElidedCycles
		c.ResetStats()
	}

	if err := s.runUntilRetired(measured, deadline); err != nil {
		return RunResult{}, err
	}

	res := RunResult{
		Policy:       s.Ctrl.Policy().Name(),
		MeasuredTime: s.Engine.Now() - startTime,
		Ctrl:         diffCtrl(s.Ctrl.Stats(), ctrlBase),
		DRAM:         diffDRAM(s.Mod.Stats(), dramBase),
	}
	end := s.Engine.Now()
	for _, c := range s.Cores {
		coreElided += c.Stats().ElidedCycles
	}
	res.Telemetry = Telemetry{
		WallNS:           time.Since(wallStart).Nanoseconds(),
		SimTicks:         end - runStart,
		EngineSteps:      s.Engine.Steps() - stepsBase,
		ElidedCoreCycles: coreElided,
		ElidedCtrlCycles: s.ctrlClock.Elided(end) - ctrlElidedBase,
		Clock:            s.cfg.Clock.String(),
	}
	if secs := float64(res.Telemetry.WallNS) / 1e9; secs > 0 {
		res.Telemetry.TicksPerSec = float64(res.Telemetry.SimTicks) / secs
	}
	for _, c := range s.Cores {
		st := c.Stats()
		res.Cycles += st.Cycles
		res.Instructions += st.Instructions
		ipc := st.IPC()
		res.PerCoreIPC = append(res.PerCoreIPC, ipc)
		res.IPCSum += ipc
	}
	if res.Instructions > 0 {
		res.RBMPKI = float64(res.Ctrl.RowMisses) / (float64(res.Instructions) / 1000)
	}
	return res, nil
}

// runUntilRetired ticks all cores until each has retired at least budget
// instructions beyond its current count. Each core gets its own ticker
// (registered in core order, so same-cycle ticks keep the classic
// controller-then-cores, core-0-first sequence); under demand-driven
// clocking a core whose NextWork lies beyond the next cycle is deferred
// to that time, or parked entirely until the load blocking its ROB head
// completes. Skipped cycles are credited inside cpu.Tick, so core
// statistics are bit-identical with per-cycle ticking.
func (s *System) runUntilRetired(budget int64, deadline ticks.T) error {
	start := s.Engine.Now()
	active := len(s.Cores)
	tickers := make([]*Ticker, len(s.Cores))
	for i, c := range s.Cores {
		i, c := i, c
		target := c.Stats().Instructions + budget
		c.SyncClock(start)
		tickers[i] = s.Engine.AddTicker(cpu.CyclePeriod, start, func(now ticks.T) {
			c.Tick(now)
			if c.Stats().Instructions >= target {
				// Done: stop ticking this core for the rest of the phase.
				s.Engine.RemoveTicker(tickers[i])
				active--
				if active == 0 {
					s.Engine.Stop()
				}
				return
			}
			if !s.elide {
				return
			}
			if next := c.NextWork(now); next > now+cpu.CyclePeriod {
				if next == ticks.Never {
					s.Engine.PauseTicker(tickers[i])
				} else {
					s.Engine.RescheduleTicker(tickers[i], next)
				}
			}
		})
		if s.elide {
			c.SetWaker(func(at ticks.T) {
				// The ticker's own paused flag is the park state:
				// RescheduleTicker clears it, and a removed (done)
				// ticker is never paused, so stale wakes no-op.
				if tickers[i].paused {
					s.Engine.RescheduleTicker(tickers[i], at)
				}
			})
		}
	}
	s.Engine.Run(start + deadline)
	for i := range tickers {
		s.Engine.RemoveTicker(tickers[i])
		s.Cores[i].SetWaker(nil)
	}
	if active > 0 {
		return fmt.Errorf("sim: cores did not retire %d instructions within %v", budget, deadline)
	}
	return nil
}

func diffCtrl(a, b memctrl.Stats) memctrl.Stats {
	return memctrl.Stats{
		Reads:        a.Reads - b.Reads,
		Writes:       a.Writes - b.Writes,
		RowHits:      a.RowHits - b.RowHits,
		RowMisses:    a.RowMisses - b.RowMisses,
		ABORFMs:      a.ABORFMs - b.ABORFMs,
		PolicyRFMs:   a.PolicyRFMs - b.PolicyRFMs,
		Refreshes:    a.Refreshes - b.Refreshes,
		TREFs:        a.TREFs - b.TREFs,
		ReadLatency:  a.ReadLatency - b.ReadLatency,
		WriteForward: a.WriteForward - b.WriteForward,
	}
}

func diffDRAM(a, b dram.Stats) dram.Stats {
	return dram.Stats{
		ACTs:            a.ACTs - b.ACTs,
		PREs:            a.PREs - b.PREs,
		RDs:             a.RDs - b.RDs,
		WRs:             a.WRs - b.WRs,
		REFs:            a.REFs - b.REFs,
		RFMs:            a.RFMs - b.RFMs,
		TREFMitigations: a.TREFMitigations - b.TREFMitigations,
		MitigatedRows:   a.MitigatedRows - b.MitigatedRows,
		AlertsAsserted:  a.AlertsAsserted - b.AlertsAsserted,
		CounterResets:   a.CounterResets - b.CounterResets,
	}
}
