package sim

import (
	"testing"

	"pracsim/internal/ticks"
)

func testSystemConfig(nbo int) SystemConfig {
	cfg := DefaultSystemConfig(nbo)
	// Smaller caches keep unit-test footprints quick while preserving the
	// hierarchy's behavior.
	cfg.LLCSizeKB = 1024
	return cfg
}

func TestSystemRunsBaseline(t *testing.T) {
	cfg := testSystemConfig(1024)
	cfg.Workload = "433.milc"
	sys, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.Run(2000, 10000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Instructions < 4*10000 {
		t.Fatalf("retired %d instructions, want >= 40000", res.Instructions)
	}
	if res.IPCSum <= 0 {
		t.Fatal("zero IPC")
	}
	if res.Ctrl.Reads == 0 {
		t.Fatal("no DRAM reads for a high-RBMPKI workload")
	}
	if res.DRAM.AlertsAsserted != 0 {
		t.Fatalf("baseline (no-ABO) asserted %d alerts", res.DRAM.AlertsAsserted)
	}
}

func TestWorkloadClassesProduceDistinctRBMPKI(t *testing.T) {
	measure := func(name string) float64 {
		cfg := testSystemConfig(1024)
		cfg.Workload = name
		sys, err := NewSystem(cfg)
		if err != nil {
			t.Fatal(err)
		}
		// Warmup must cover the hot set, or cold misses dominate the
		// measured window and every class looks memory-bound.
		res, err := sys.Run(40000, 20000)
		if err != nil {
			t.Fatal(err)
		}
		return res.RBMPKI
	}
	high := measure("433.milc")
	low := measure("444.namd")
	if high < 5 {
		t.Errorf("high-class RBMPKI = %.2f, want clearly memory-bound (>5)", high)
	}
	if low > 2 {
		t.Errorf("low-class RBMPKI = %.2f, want cache-resident (<2)", low)
	}
	if low >= high {
		t.Errorf("low RBMPKI %.2f >= high %.2f", low, high)
	}
}

func TestTPRACIssuesTimedRFMsUnderWorkload(t *testing.T) {
	cfg := testSystemConfig(1024)
	cfg.Policy = PolicyTPRAC
	cfg.TBWindow = cfg.DRAM.Timing.TREFI // 1 tREFI
	sys, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.Run(1000, 8000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Ctrl.PolicyRFMs == 0 {
		t.Fatal("TPRAC issued no TB-RFMs")
	}
	wantRFMs := int64(res.MeasuredTime / cfg.TBWindow)
	if res.Ctrl.PolicyRFMs < wantRFMs-2 || res.Ctrl.PolicyRFMs > wantRFMs+2 {
		t.Errorf("TB-RFMs = %d over %v, want about %d", res.Ctrl.PolicyRFMs, res.MeasuredTime, wantRFMs)
	}
	if res.DRAM.AlertsAsserted != 0 {
		t.Errorf("alerts under TPRAC = %d, want 0", res.DRAM.AlertsAsserted)
	}
}

func TestTPRACSlowerThanBaseline(t *testing.T) {
	run := func(policy PolicyKind, window ticks.T) float64 {
		cfg := testSystemConfig(1024)
		cfg.Policy = policy
		cfg.TBWindow = window
		cfg.Workload = "470.lbm"
		sys, err := NewSystem(cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := sys.Run(2000, 8000)
		if err != nil {
			t.Fatal(err)
		}
		return res.IPCSum
	}
	base := run(PolicyNone, 0)
	// An aggressive TB-Window (0.25 tREFI) costs visible bandwidth.
	tight := run(PolicyTPRAC, ticks.FromNS(975))
	if tight >= base {
		t.Errorf("TPRAC(0.25 tREFI) IPC %.3f not below baseline %.3f", tight, base)
	}
	slowdown := 1 - tight/base
	if slowdown > 0.6 {
		t.Errorf("slowdown = %.1f%%, implausibly large", slowdown*100)
	}
}

func TestACBPolicyFiresUnderLoad(t *testing.T) {
	cfg := testSystemConfig(1024)
	cfg.Policy = PolicyACB
	cfg.BAT = 64
	sys, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.Run(1000, 8000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Ctrl.PolicyRFMs == 0 {
		t.Fatal("ACB never fired under a memory-bound workload")
	}
}

func TestMixedWorkloads(t *testing.T) {
	cfg := testSystemConfig(1024)
	cfg.WorkloadMix = []string{"433.milc", "444.namd", "401.bzip2", "470.lbm"}
	sys, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.Run(1000, 5000)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PerCoreIPC) != 4 {
		t.Fatalf("per-core IPCs = %d entries, want 4", len(res.PerCoreIPC))
	}
	// The cache-resident core must outpace the memory-bound ones.
	if res.PerCoreIPC[1] <= res.PerCoreIPC[0] {
		t.Errorf("444.namd IPC %.3f not above 433.milc %.3f", res.PerCoreIPC[1], res.PerCoreIPC[0])
	}
}

func TestSystemConfigValidation(t *testing.T) {
	cfg := testSystemConfig(1024)
	cfg.Cores = 0
	if _, err := NewSystem(cfg); err == nil {
		t.Error("zero cores accepted")
	}
	cfg = testSystemConfig(1024)
	cfg.WorkloadMix = []string{"433.milc"} // wrong length
	if _, err := NewSystem(cfg); err == nil {
		t.Error("mismatched mix length accepted")
	}
	cfg = testSystemConfig(1024)
	cfg.Workload = "no-such-workload"
	if _, err := NewSystem(cfg); err == nil {
		t.Error("unknown workload accepted")
	}
	cfg = testSystemConfig(1024)
	cfg.Policy = PolicyTPRAC
	cfg.TBWindow = 0
	if _, err := NewSystem(cfg); err == nil {
		t.Error("TPRAC without window accepted")
	}
}

func TestRunRejectsZeroBudget(t *testing.T) {
	sys, err := NewSystem(testSystemConfig(1024))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Run(0, 0); err == nil {
		t.Error("zero measured budget accepted")
	}
}
