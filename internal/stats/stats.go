// Package stats provides the aggregation and rendering helpers the
// experiment harness uses: means, geometric means, weighted speedup,
// aligned ASCII tables, CSV output and terminal heatmaps.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Mean returns the arithmetic mean (0 for an empty slice).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Geomean returns the geometric mean (0 for empty or non-positive input).
func Geomean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		if x <= 0 {
			return 0
		}
		s += math.Log(x)
	}
	return math.Exp(s / float64(len(xs)))
}

// Median returns the median (0 for an empty slice).
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	c := append([]float64(nil), xs...)
	sort.Float64s(c)
	n := len(c)
	if n%2 == 1 {
		return c[n/2]
	}
	return (c[n/2-1] + c[n/2]) / 2
}

// WeightedSpeedup is the paper's performance metric for a multiprogrammed
// mix: the sum over cores of IPC_shared / IPC_alone.
func WeightedSpeedup(shared, alone []float64) (float64, error) {
	if len(shared) != len(alone) || len(shared) == 0 {
		return 0, fmt.Errorf("stats: need equal non-empty IPC vectors, got %d and %d", len(shared), len(alone))
	}
	ws := 0.0
	for i := range shared {
		if alone[i] <= 0 {
			return 0, fmt.Errorf("stats: core %d alone-IPC is non-positive", i)
		}
		ws += shared[i] / alone[i]
	}
	return ws, nil
}

// Table renders rows as an aligned ASCII table.
type Table struct {
	Header []string
	Rows   [][]string
}

// Add appends a row, formatting each cell with %v.
func (t *Table) Add(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.3f", v)
		default:
			row[i] = fmt.Sprint(c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	cols := len(t.Header)
	for _, r := range t.Rows {
		if len(r) > cols {
			cols = len(r)
		}
	}
	width := make([]int, cols)
	measure := func(r []string) {
		for i, c := range r {
			if len(c) > width[i] {
				width[i] = len(c)
			}
		}
	}
	measure(t.Header)
	for _, r := range t.Rows {
		measure(r)
	}
	var b strings.Builder
	writeRow := func(r []string) {
		for i := 0; i < cols; i++ {
			cell := ""
			if i < len(r) {
				cell = r[i]
			}
			fmt.Fprintf(&b, "%-*s", width[i]+2, cell)
		}
		b.WriteByte('\n')
	}
	if len(t.Header) > 0 {
		writeRow(t.Header)
		for i := 0; i < cols; i++ {
			b.WriteString(strings.Repeat("-", width[i]) + "  ")
		}
		b.WriteByte('\n')
	}
	for _, r := range t.Rows {
		writeRow(r)
	}
	return b.String()
}

// CSV renders the table as comma-separated values with quoting for commas.
func (t *Table) CSV() string {
	var b strings.Builder
	writeRow := func(r []string) {
		for i, c := range r {
			if i > 0 {
				b.WriteByte(',')
			}
			if strings.ContainsAny(c, ",\"\n") {
				b.WriteString(`"` + strings.ReplaceAll(c, `"`, `""`) + `"`)
			} else {
				b.WriteString(c)
			}
		}
		b.WriteByte('\n')
	}
	if len(t.Header) > 0 {
		writeRow(t.Header)
	}
	for _, r := range t.Rows {
		writeRow(r)
	}
	return b.String()
}

// Heatmap renders a matrix as ASCII shades, one row per matrix row,
// normalized to the matrix maximum. Used for Figure 5's panels.
func Heatmap(m [][]float64) string {
	shades := []byte(" .:-=+*#%@")
	maxV := 0.0
	for _, row := range m {
		for _, v := range row {
			if v > maxV {
				maxV = v
			}
		}
	}
	var b strings.Builder
	for _, row := range m {
		for _, v := range row {
			idx := 0
			if maxV > 0 {
				idx = int(v / maxV * float64(len(shades)-1))
			}
			if idx >= len(shades) {
				idx = len(shades) - 1
			}
			if idx < 0 {
				idx = 0
			}
			b.WriteByte(shades[idx])
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Sparkline renders a series as a one-line bar chart, normalized to max.
func Sparkline(xs []float64) string {
	bars := []rune("▁▂▃▄▅▆▇█")
	maxV := 0.0
	for _, x := range xs {
		if x > maxV {
			maxV = x
		}
	}
	var b strings.Builder
	for _, x := range xs {
		idx := 0
		if maxV > 0 {
			idx = int(x / maxV * float64(len(bars)-1))
		}
		if idx >= len(bars) {
			idx = len(bars) - 1
		}
		if idx < 0 {
			idx = 0
		}
		b.WriteRune(bars[idx])
	}
	return b.String()
}
