package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestMeanGeomeanMedian(t *testing.T) {
	xs := []float64{1, 2, 4}
	if got := Mean(xs); got != 7.0/3 {
		t.Errorf("Mean = %v", got)
	}
	if got := Geomean(xs); math.Abs(got-2) > 1e-12 {
		t.Errorf("Geomean = %v, want 2", got)
	}
	if got := Median(xs); got != 2 {
		t.Errorf("Median = %v, want 2", got)
	}
	if got := Median([]float64{1, 2, 3, 4}); got != 2.5 {
		t.Errorf("even Median = %v, want 2.5", got)
	}
	if Mean(nil) != 0 || Geomean(nil) != 0 || Median(nil) != 0 {
		t.Error("empty-slice aggregates should be 0")
	}
	if Geomean([]float64{1, -1}) != 0 {
		t.Error("Geomean with non-positive input should be 0")
	}
}

func TestWeightedSpeedup(t *testing.T) {
	ws, err := WeightedSpeedup([]float64{1, 2}, []float64{2, 2})
	if err != nil {
		t.Fatal(err)
	}
	if ws != 1.5 {
		t.Errorf("WeightedSpeedup = %v, want 1.5", ws)
	}
	if _, err := WeightedSpeedup([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("mismatched lengths accepted")
	}
	if _, err := WeightedSpeedup([]float64{1}, []float64{0}); err == nil {
		t.Error("zero alone-IPC accepted")
	}
}

func TestTableRendering(t *testing.T) {
	tb := &Table{Header: []string{"name", "value"}}
	tb.Add("x", 1.5)
	tb.Add("longer-name", 0.25)
	s := tb.String()
	if !strings.Contains(s, "longer-name") || !strings.Contains(s, "1.500") {
		t.Errorf("table output missing cells:\n%s", s)
	}
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	if len(lines) != 4 { // header, rule, two rows
		t.Errorf("table has %d lines, want 4:\n%s", len(lines), s)
	}
}

func TestTableCSVQuoting(t *testing.T) {
	tb := &Table{Header: []string{"a", "b"}}
	tb.Add(`with,comma`, `with"quote`)
	csv := tb.CSV()
	if !strings.Contains(csv, `"with,comma"`) {
		t.Errorf("comma cell not quoted: %s", csv)
	}
	if !strings.Contains(csv, `"with""quote"`) {
		t.Errorf("quote cell not escaped: %s", csv)
	}
}

func TestHeatmapShape(t *testing.T) {
	m := [][]float64{{0, 1}, {0.5, 0.25}}
	h := Heatmap(m)
	lines := strings.Split(strings.TrimRight(h, "\n"), "\n")
	if len(lines) != 2 || len(lines[0]) != 2 {
		t.Fatalf("heatmap shape wrong:\n%s", h)
	}
	if lines[0][0] != ' ' {
		t.Errorf("zero cell = %q, want space", lines[0][0])
	}
	if lines[0][1] != '@' {
		t.Errorf("max cell = %q, want '@'", lines[0][1])
	}
}

func TestSparkline(t *testing.T) {
	s := Sparkline([]float64{0, 1})
	if len([]rune(s)) != 2 {
		t.Fatalf("sparkline length = %d, want 2", len([]rune(s)))
	}
	if Sparkline(nil) != "" {
		t.Error("empty sparkline should be empty string")
	}
}

// Property: geomean lies between min and max for positive inputs.
func TestGeomeanBoundsProperty(t *testing.T) {
	prop := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		lo, hi := math.MaxFloat64, 0.0
		for i, r := range raw {
			xs[i] = float64(r%1000) + 1
			if xs[i] < lo {
				lo = xs[i]
			}
			if xs[i] > hi {
				hi = xs[i]
			}
		}
		g := Geomean(xs)
		return g >= lo-1e-9 && g <= hi+1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
