// Package ticks defines the simulation time base shared by every component.
//
// One tick is 250 picoseconds. This is simultaneously one CPU cycle at the
// simulated 4 GHz core clock and half a DDR5-8000 tCK, so every timing
// parameter in the paper's Table 3 is an integral number of ticks.
package ticks

import "fmt"

// T is a point in simulated time, or a duration, measured in ticks.
type T int64

// Never is a point in time later than any reachable simulation instant.
// Components report it from their NextWork methods to mean "quiescent: I
// have no self-scheduled future work; wake me by event only".
const Never = T(1<<63 - 1)

// PerNS is the number of ticks in one nanosecond.
const PerNS = 4

// PicosPerTick is the real-time length of one tick.
const PicosPerTick = 250

// FromNS converts a duration in nanoseconds to ticks.
// It panics if ns is not representable as a whole number of ticks,
// because silently rounding a DRAM timing constraint would make the
// simulator unfaithful in a way that is very hard to notice later.
func FromNS(ns float64) T {
	t := ns * PerNS
	ti := T(t)
	if float64(ti) != t {
		panic(fmt.Sprintf("ticks: %vns is not a multiple of %dps", ns, PicosPerTick))
	}
	return ti
}

// FromUS converts a duration in microseconds to ticks.
func FromUS(us float64) T { return FromNS(us * 1000) }

// FromMS converts a duration in milliseconds to ticks.
func FromMS(ms float64) T { return FromNS(ms * 1e6) }

// NS reports the duration in nanoseconds.
func (t T) NS() float64 { return float64(t) / PerNS }

// US reports the duration in microseconds.
func (t T) US() float64 { return t.NS() / 1000 }

// MS reports the duration in milliseconds.
func (t T) MS() float64 { return t.NS() / 1e6 }

// Seconds reports the duration in seconds.
func (t T) Seconds() float64 { return t.NS() / 1e9 }

// String formats the time with an adaptive unit, for logs and test output.
func (t T) String() string {
	switch {
	case t < 0:
		return "-" + (-t).String()
	case t < 4_000:
		return fmt.Sprintf("%.2fns", t.NS())
	case t < 4_000_000:
		return fmt.Sprintf("%.3fus", t.US())
	default:
		return fmt.Sprintf("%.3fms", t.MS())
	}
}

// Min returns the smaller of a and b.
func Min(a, b T) T {
	if a < b {
		return a
	}
	return b
}

// Max returns the larger of a and b.
func Max(a, b T) T {
	if a > b {
		return a
	}
	return b
}
