package ticks

import (
	"testing"
	"testing/quick"
)

func TestConversions(t *testing.T) {
	cases := []struct {
		ns   float64
		want T
	}{
		{0.25, 1},
		{1, 4},
		{52, 208},
		{3900, 15600},
	}
	for _, c := range cases {
		if got := FromNS(c.ns); got != c.want {
			t.Errorf("FromNS(%v) = %d, want %d", c.ns, got, c.want)
		}
	}
	if got := FromUS(1); got != 4000 {
		t.Errorf("FromUS(1) = %d, want 4000", got)
	}
	if got := FromMS(32); got != 32*4_000_000 {
		t.Errorf("FromMS(32) = %d", got)
	}
}

func TestNonRepresentablePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("FromNS(0.1) did not panic; silent rounding would corrupt timings")
		}
	}()
	FromNS(0.1)
}

func TestBackConversions(t *testing.T) {
	d := FromNS(350)
	if d.NS() != 350 {
		t.Errorf("NS() = %v", d.NS())
	}
	if FromUS(6.5).US() != 6.5 {
		t.Errorf("US() round trip failed")
	}
	if FromMS(32).MS() != 32 {
		t.Errorf("MS() round trip failed")
	}
	if FromMS(1000).Seconds() != 1 {
		t.Errorf("Seconds() = %v", FromMS(1000).Seconds())
	}
}

func TestStringAdaptiveUnits(t *testing.T) {
	cases := []struct {
		d    T
		want string
	}{
		{FromNS(350), "350.00ns"},
		{FromUS(6.24), "6.240us"},
		{FromMS(32), "32.000ms"},
		{-FromNS(350), "-350.00ns"},
	}
	for _, c := range cases {
		if got := c.d.String(); got != c.want {
			t.Errorf("String(%d) = %q, want %q", c.d, got, c.want)
		}
	}
}

func TestMinMax(t *testing.T) {
	if Min(3, 5) != 3 || Min(5, 3) != 3 {
		t.Error("Min wrong")
	}
	if Max(3, 5) != 5 || Max(5, 3) != 5 {
		t.Error("Max wrong")
	}
}

// Property: integral nanoseconds always convert exactly and round-trip.
func TestRoundTripProperty(t *testing.T) {
	prop := func(ns uint32) bool {
		d := FromNS(float64(ns))
		return d.NS() == float64(ns) && d == T(ns)*PerNS
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
