package trace

import (
	"fmt"
	"hash/fnv"
	"math/rand"
)

// Workload names a catalog entry: a synthetic stand-in for one of the
// paper's Table 4 traces.
type Workload struct {
	Name  string
	Suite string // "SPEC2K6", "SPEC2K17", "CloudSuite"
	Class Class
}

// Catalog returns the 50-workload catalog mirroring the paper's Table 4
// (deduplicated): 25 High, 7 Medium and 18 Low RBMPKI workloads.
func Catalog() []Workload {
	var list []Workload
	add := func(suite string, class Class, names ...string) {
		for _, n := range names {
			list = append(list, Workload{Name: n, Suite: suite, Class: class})
		}
	}
	add("CloudSuite", ClassHigh, "nutch", "cassandra", "classification", "cloud9")
	add("SPEC2K6", ClassHigh,
		"433.milc", "410.bwaves", "470.lbm", "471.omnetpp", "483.xalancbmk",
		"450.soplex", "429.mcf", "482.sphinx3", "437.leslie3d",
		"436.cactusADM", "459.GemsFDTD")
	add("SPEC2K17", ClassHigh,
		"519.lbm", "520.omnetpp", "649.fotonik3d", "619.lbm", "654.roms",
		"605.mcf", "627.cam4", "620.omnetpp", "628.pop2", "607.cactuBSSN")
	add("SPEC2K6", ClassMedium, "401.bzip2", "473.astar", "464.h264ref")
	add("SPEC2K17", ClassMedium, "657.xz", "602.gcc", "623.xalancbmk", "481.wrf")
	add("SPEC2K6", ClassLow,
		"458.sjeng", "456.hmmer", "403.gcc", "444.namd", "465.tonto",
		"447.dealII", "435.gromacs", "454.calculix", "445.gobmk", "453.povray",
		"416.gamess")
	add("SPEC2K17", ClassLow,
		"631.deepsjeng", "625.x264", "603.bwaves", "638.imagick", "644.nab",
		"600.perlbench", "621.wrf")
	return list
}

// CatalogByClass filters the catalog to one intensity band.
func CatalogByClass(c Class) []Workload {
	var out []Workload
	for _, w := range Catalog() {
		if w.Class == c {
			out = append(out, w)
		}
	}
	return out
}

// Lookup finds a catalog entry by name.
func Lookup(name string) (Workload, error) {
	for _, w := range Catalog() {
		if w.Name == name {
			return w, nil
		}
	}
	return Workload{}, fmt.Errorf("trace: unknown workload %q", name)
}

// SpecFor derives the deterministic synthetic spec for a catalog entry.
// Parameters are jittered per workload name so the 50 entries behave
// distinctly while staying inside their RBMPKI band.
func SpecFor(w Workload) SynthSpec {
	h := fnv.New64a()
	h.Write([]byte(w.Name))
	seed := int64(h.Sum64() & (1<<62 - 1))
	rng := rand.New(rand.NewSource(seed))
	jitter := func(lo, hi float64) float64 { return lo + rng.Float64()*(hi-lo) }

	spec := SynthSpec{
		Name:  w.Name,
		Class: w.Class,
		Seed:  seed,
		Base:  0,
	}
	switch w.Class {
	case ClassHigh:
		spec.MemRatio = jitter(0.25, 0.40)
		spec.HotFrac = jitter(0.15, 0.35)
		spec.StreamFrac = jitter(0.20, 0.70)
		spec.WriteFrac = jitter(0.15, 0.30)
		spec.HotLines = 1 << 9
		spec.FootprintLines = 1 << 20 // 64 MB: far beyond the 8 MB LLC
	case ClassMedium:
		spec.MemRatio = jitter(0.10, 0.18)
		spec.HotFrac = jitter(0.90, 0.96)
		spec.StreamFrac = jitter(0.30, 0.60)
		spec.WriteFrac = jitter(0.10, 0.25)
		spec.HotLines = 1 << 10
		spec.FootprintLines = 1 << 19
	case ClassLow:
		spec.MemRatio = jitter(0.08, 0.15)
		spec.HotFrac = jitter(0.995, 0.999)
		spec.StreamFrac = jitter(0.20, 0.50)
		spec.WriteFrac = jitter(0.10, 0.25)
		spec.HotLines = 1 << 9
		spec.FootprintLines = 1 << 18
	default:
		panic(fmt.Sprintf("trace: workload %q has unknown class %q", w.Name, w.Class))
	}
	return spec
}

// NewWorkloadStream builds the synthetic stream for a named workload.
func NewWorkloadStream(name string) (*Synth, error) {
	w, err := Lookup(name)
	if err != nil {
		return nil, err
	}
	return NewSynth(SpecFor(w))
}
