package trace

import (
	"fmt"
	"math/rand"
)

// Class is the paper's Table 4 memory-intensity band.
type Class string

const (
	// ClassHigh is RBMPKI >= 10.
	ClassHigh Class = "H"
	// ClassMedium is 1 <= RBMPKI < 10.
	ClassMedium Class = "M"
	// ClassLow is RBMPKI < 1.
	ClassLow Class = "L"
)

// SynthSpec parameterizes a synthetic workload. The generator emits an
// infinite instruction stream mixing three memory behaviors:
//
//   - hot-set accesses that stay cache-resident (no DRAM traffic),
//   - sequential streaming through a large footprint (row-buffer friendly),
//   - random pointer-chase style accesses (row-buffer hostile).
//
// RBMPKI is steered by MemRatio and RandomFrac; row-buffer locality by
// StreamFrac.
type SynthSpec struct {
	Name  string
	Class Class

	MemRatio   float64 // fraction of instructions that touch memory
	HotFrac    float64 // fraction of memory ops hitting the small hot set
	StreamFrac float64 // fraction of the remainder that streams sequentially
	WriteFrac  float64 // fraction of memory ops that are stores

	HotLines       uint64 // hot-set size in cache lines
	FootprintLines uint64 // total working set in cache lines
	Base           uint64 // first cache line of the workload's region

	Seed int64
}

// Validate reports whether the spec is generable.
func (s SynthSpec) Validate() error {
	switch {
	case s.MemRatio < 0 || s.MemRatio > 1,
		s.HotFrac < 0 || s.HotFrac > 1,
		s.StreamFrac < 0 || s.StreamFrac > 1,
		s.WriteFrac < 0 || s.WriteFrac > 1:
		return fmt.Errorf("trace: %s: fractions must be in [0,1]: %+v", s.Name, s)
	case s.HotLines == 0 || s.FootprintLines == 0:
		return fmt.Errorf("trace: %s: hot set and footprint must be non-empty", s.Name)
	case s.HotLines > s.FootprintLines:
		return fmt.Errorf("trace: %s: hot set (%d) exceeds footprint (%d)", s.Name, s.HotLines, s.FootprintLines)
	}
	return nil
}

// Synth is an infinite Stream generated from a SynthSpec.
type Synth struct {
	spec      SynthSpec
	rng       *rand.Rand
	streamPos uint64
	pcPool    []uint64
}

// NewSynth builds the generator for a spec.
func NewSynth(spec SynthSpec) (*Synth, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(spec.Seed))
	pcs := make([]uint64, 64)
	for i := range pcs {
		pcs[i] = 0x400000 + uint64(i)*4
	}
	return &Synth{spec: spec, rng: rng, pcPool: pcs}, nil
}

// Spec returns the generating spec.
func (s *Synth) Spec() SynthSpec { return s.spec }

// Next implements Stream; it never ends.
func (s *Synth) Next() (Record, bool) {
	sp := &s.spec
	rec := Record{PC: s.pcPool[s.rng.Intn(len(s.pcPool))]}
	if s.rng.Float64() >= sp.MemRatio {
		return rec, true
	}
	rec.IsMem = true
	rec.Write = s.rng.Float64() < sp.WriteFrac
	switch {
	case s.rng.Float64() < sp.HotFrac:
		rec.Line = sp.Base + uint64(s.rng.Int63())%sp.HotLines
		rec.PC = s.pcPool[0]
	case s.rng.Float64() < sp.StreamFrac:
		s.streamPos = (s.streamPos + 1) % sp.FootprintLines
		rec.Line = sp.Base + s.streamPos
		rec.PC = s.pcPool[1]
	default:
		rec.Line = sp.Base + uint64(s.rng.Int63())%sp.FootprintLines
	}
	return rec, true
}

// Take materializes the next n records of a stream, e.g. for file export.
func Take(s Stream, n int) []Record {
	recs := make([]Record, 0, n)
	for i := 0; i < n; i++ {
		r, ok := s.Next()
		if !ok {
			break
		}
		recs = append(recs, r)
	}
	return recs
}
