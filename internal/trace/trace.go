// Package trace defines the instruction-trace representation consumed by the
// simulated cores, a binary on-disk format, and a deterministic synthetic
// workload generator.
//
// The paper evaluates 50 SPEC2006/SPEC2017/CloudSuite traces categorized by
// row-buffer misses per kilo-instruction (RBMPKI, Table 4). Those traces are
// proprietary, so this package synthesizes address streams whose RBMPKI
// lands in the same High/Medium/Low bands — the property the paper's
// methodology keys on. DESIGN.md documents the substitution.
package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

// Record is one trace entry: a (possibly memory-accessing) instruction.
type Record struct {
	PC    uint64 // instruction address, used by stride prefetchers
	IsMem bool
	Write bool
	Line  uint64 // physical cache-line index, valid when IsMem
}

// Stream produces trace records. Streams may be infinite (synthetic
// generators loop forever); consumers decide how many instructions to run.
type Stream interface {
	Next() (Record, bool)
}

// SliceStream replays a fixed record slice once.
type SliceStream struct {
	recs []Record
	pos  int
}

// NewSliceStream returns a stream over recs.
func NewSliceStream(recs []Record) *SliceStream { return &SliceStream{recs: recs} }

// Next implements Stream.
func (s *SliceStream) Next() (Record, bool) {
	if s.pos >= len(s.recs) {
		return Record{}, false
	}
	r := s.recs[s.pos]
	s.pos++
	return r, true
}

// LoopStream replays a fixed record slice forever.
type LoopStream struct {
	recs []Record
	pos  int
}

// NewLoopStream returns an infinite stream cycling over recs.
func NewLoopStream(recs []Record) (*LoopStream, error) {
	if len(recs) == 0 {
		return nil, fmt.Errorf("trace: cannot loop an empty record set")
	}
	return &LoopStream{recs: recs}, nil
}

// Next implements Stream.
func (s *LoopStream) Next() (Record, bool) {
	r := s.recs[s.pos]
	s.pos = (s.pos + 1) % len(s.recs)
	return r, true
}

const fileMagic = "PRACTRC1"

// Write serializes records in the package's binary format:
// an 8-byte magic, then per record a flags byte, PC and Line as varints.
func Write(w io.Writer, recs []Record) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(fileMagic); err != nil {
		return fmt.Errorf("trace: writing header: %w", err)
	}
	var buf [binary.MaxVarintLen64]byte
	for _, r := range recs {
		var flags byte
		if r.IsMem {
			flags |= 1
		}
		if r.Write {
			flags |= 2
		}
		if err := bw.WriteByte(flags); err != nil {
			return fmt.Errorf("trace: writing record: %w", err)
		}
		n := binary.PutUvarint(buf[:], r.PC)
		if _, err := bw.Write(buf[:n]); err != nil {
			return fmt.Errorf("trace: writing record: %w", err)
		}
		if r.IsMem {
			n = binary.PutUvarint(buf[:], r.Line)
			if _, err := bw.Write(buf[:n]); err != nil {
				return fmt.Errorf("trace: writing record: %w", err)
			}
		}
	}
	return bw.Flush()
}

// Read deserializes a trace written by Write.
func Read(r io.Reader) ([]Record, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(fileMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("trace: reading header: %w", err)
	}
	if string(magic) != fileMagic {
		return nil, fmt.Errorf("trace: bad magic %q", magic)
	}
	var recs []Record
	for {
		flags, err := br.ReadByte()
		if err == io.EOF {
			return recs, nil
		}
		if err != nil {
			return nil, fmt.Errorf("trace: reading record: %w", err)
		}
		var rec Record
		rec.IsMem = flags&1 != 0
		rec.Write = flags&2 != 0
		if rec.PC, err = binary.ReadUvarint(br); err != nil {
			return nil, fmt.Errorf("trace: reading PC: %w", err)
		}
		if rec.IsMem {
			if rec.Line, err = binary.ReadUvarint(br); err != nil {
				return nil, fmt.Errorf("trace: reading line: %w", err)
			}
		}
		recs = append(recs, rec)
	}
}
