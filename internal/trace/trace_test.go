package trace

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestSliceStreamEnds(t *testing.T) {
	s := NewSliceStream([]Record{{PC: 1}, {PC: 2}})
	r1, ok1 := s.Next()
	r2, ok2 := s.Next()
	_, ok3 := s.Next()
	if !ok1 || !ok2 || ok3 {
		t.Fatalf("ok sequence = %v,%v,%v; want true,true,false", ok1, ok2, ok3)
	}
	if r1.PC != 1 || r2.PC != 2 {
		t.Fatalf("records out of order: %v %v", r1, r2)
	}
}

func TestLoopStreamWraps(t *testing.T) {
	s, err := NewLoopStream([]Record{{PC: 1}, {PC: 2}})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		r, ok := s.Next()
		if !ok {
			t.Fatal("loop stream ended")
		}
		want := uint64(i%2 + 1)
		if r.PC != want {
			t.Fatalf("iteration %d: PC = %d, want %d", i, r.PC, want)
		}
	}
}

func TestLoopStreamRejectsEmpty(t *testing.T) {
	if _, err := NewLoopStream(nil); err == nil {
		t.Fatal("empty loop stream accepted")
	}
}

func TestFileRoundTrip(t *testing.T) {
	recs := []Record{
		{PC: 0x400000, IsMem: false},
		{PC: 0x400004, IsMem: true, Line: 12345},
		{PC: 0x400008, IsMem: true, Write: true, Line: 99},
	}
	var buf bytes.Buffer
	if err := Write(&buf, recs); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, recs) {
		t.Fatalf("round trip mismatch:\n got %v\nwant %v", got, recs)
	}
}

func TestReadRejectsBadMagic(t *testing.T) {
	if _, err := Read(bytes.NewReader([]byte("NOTATRACE"))); err == nil {
		t.Fatal("bad magic accepted")
	}
}

// Property: arbitrary record slices survive the binary format unchanged.
func TestFileRoundTripProperty(t *testing.T) {
	prop := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		recs := make([]Record, int(n))
		for i := range recs {
			recs[i] = Record{
				PC:    uint64(rng.Int63()),
				IsMem: rng.Intn(2) == 0,
				Line:  uint64(rng.Int63()),
			}
			if !recs[i].IsMem {
				recs[i].Line = 0
			} else {
				recs[i].Write = rng.Intn(2) == 0
			}
		}
		var buf bytes.Buffer
		if err := Write(&buf, recs); err != nil {
			return false
		}
		got, err := Read(&buf)
		if err != nil {
			return false
		}
		if len(recs) == 0 {
			return len(got) == 0
		}
		return reflect.DeepEqual(got, recs)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSynthDeterminism(t *testing.T) {
	spec := SpecFor(Workload{Name: "433.milc", Class: ClassHigh})
	a, err := NewSynth(spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewSynth(spec)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		ra, _ := a.Next()
		rb, _ := b.Next()
		if ra != rb {
			t.Fatalf("record %d diverged: %v vs %v", i, ra, rb)
		}
	}
}

func TestSynthRespectsFootprint(t *testing.T) {
	spec := SynthSpec{
		Name: "tiny", Class: ClassLow,
		MemRatio: 1, HotFrac: 0, StreamFrac: 0.5, WriteFrac: 0.2,
		HotLines: 4, FootprintLines: 128, Base: 1000, Seed: 7,
	}
	s, err := NewSynth(spec)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5000; i++ {
		r, _ := s.Next()
		if !r.IsMem {
			t.Fatal("MemRatio=1 produced a non-memory record")
		}
		if r.Line < 1000 || r.Line >= 1000+128 {
			t.Fatalf("line %d outside footprint [1000,1128)", r.Line)
		}
	}
}

func TestSynthMemRatio(t *testing.T) {
	spec := SpecFor(Workload{Name: "429.mcf", Class: ClassHigh})
	s, err := NewSynth(spec)
	if err != nil {
		t.Fatal(err)
	}
	const n = 20000
	mem := 0
	for i := 0; i < n; i++ {
		r, _ := s.Next()
		if r.IsMem {
			mem++
		}
	}
	got := float64(mem) / n
	if got < spec.MemRatio-0.03 || got > spec.MemRatio+0.03 {
		t.Fatalf("memory ratio = %.3f, want about %.3f", got, spec.MemRatio)
	}
}

func TestSynthValidation(t *testing.T) {
	bad := SynthSpec{Name: "bad", MemRatio: 2, HotLines: 1, FootprintLines: 2}
	if _, err := NewSynth(bad); err == nil {
		t.Error("MemRatio=2 accepted")
	}
	bad = SynthSpec{Name: "bad", MemRatio: 0.5, HotLines: 10, FootprintLines: 2}
	if _, err := NewSynth(bad); err == nil {
		t.Error("hot set larger than footprint accepted")
	}
	bad = SynthSpec{Name: "bad", MemRatio: 0.5, HotLines: 0, FootprintLines: 2}
	if _, err := NewSynth(bad); err == nil {
		t.Error("empty hot set accepted")
	}
}

func TestCatalogShape(t *testing.T) {
	cat := Catalog()
	if len(cat) != 50 {
		t.Fatalf("catalog has %d workloads, want 50 (paper Table 4)", len(cat))
	}
	counts := map[Class]int{}
	suites := map[string]int{}
	seen := map[string]bool{}
	for _, w := range cat {
		if seen[w.Name] {
			t.Errorf("duplicate workload %q", w.Name)
		}
		seen[w.Name] = true
		counts[w.Class]++
		suites[w.Suite]++
	}
	if counts[ClassHigh] != 25 || counts[ClassMedium] != 7 || counts[ClassLow] != 18 {
		t.Errorf("class counts = %v, want H:25 M:7 L:18", counts)
	}
	if suites["CloudSuite"] != 4 {
		t.Errorf("CloudSuite count = %d, want 4", suites["CloudSuite"])
	}
}

func TestCatalogSpecsValidate(t *testing.T) {
	for _, w := range Catalog() {
		if err := SpecFor(w).Validate(); err != nil {
			t.Errorf("%s: %v", w.Name, err)
		}
	}
}

func TestCatalogByClassAndLookup(t *testing.T) {
	if got := len(CatalogByClass(ClassMedium)); got != 7 {
		t.Errorf("medium workloads = %d, want 7", got)
	}
	if _, err := Lookup("433.milc"); err != nil {
		t.Errorf("Lookup(433.milc): %v", err)
	}
	if _, err := Lookup("not-a-workload"); err == nil {
		t.Error("unknown workload accepted")
	}
	if _, err := NewWorkloadStream("433.milc"); err != nil {
		t.Errorf("NewWorkloadStream: %v", err)
	}
}

func TestTake(t *testing.T) {
	s := NewSliceStream([]Record{{PC: 1}, {PC: 2}, {PC: 3}})
	got := Take(s, 5)
	if len(got) != 3 {
		t.Fatalf("Take past end = %d records, want 3", len(got))
	}
}
