// Package pracsim is a cycle-level reproduction of "When Mitigations
// Backfire: Timing Channel Attacks and Defense for PRAC-Based RowHammer
// Mitigations" (ISCA 2025): a DDR5 + PRAC memory-system simulator, the
// PRACLeak covert- and side-channel attacks, and the TPRAC defense.
//
// The package is a facade: it re-exports the library's stable API from the
// internal implementation packages.
//
//   - System simulation: DefaultSystemConfig, NewSystem, Run — a 4-core
//     out-of-order machine over a PRAC-enabled DDR5 channel.
//   - Attacks: RunActivityChannel, RunCountChannel, RunAESAttack,
//     RunCharacterization — the paper's Section 3.
//   - Defense analysis: AnalysisParams, SolveWindow, TMax — Section 4.2.
//   - Experiments: the Run* functions reproducing every evaluation table
//     and figure (package internal/exp re-exported one-to-one).
package pracsim

import (
	"pracsim/internal/analysis"
	"pracsim/internal/attack"
	"pracsim/internal/dram"
	"pracsim/internal/exp"
	"pracsim/internal/exp/dispatch"
	"pracsim/internal/exp/journal"
	"pracsim/internal/exp/shard"
	"pracsim/internal/exp/store"
	"pracsim/internal/exp/service"
	storeserver "pracsim/internal/exp/store/server"
	"pracsim/internal/fault"
	"pracsim/internal/httpd"
	"pracsim/internal/mitigation"
	"pracsim/internal/retry"
	"pracsim/internal/sim"
	"pracsim/internal/ticks"
)

// Ticks is the simulation time unit: 250 picoseconds.
type Ticks = ticks.T

// Time helpers.
var (
	FromNS = ticks.FromNS
	FromUS = ticks.FromUS
	FromMS = ticks.FromMS
)

// System simulation.
type (
	// SystemConfig assembles the paper's Table 3 machine.
	SystemConfig = sim.SystemConfig
	// System is an assembled simulated machine.
	System = sim.System
	// RunResult summarizes a measured simulation interval.
	RunResult = sim.RunResult
	// PolicyKind selects the mitigation policy.
	PolicyKind = sim.PolicyKind
)

// Mitigation policies.
const (
	PolicyABOOnly = sim.PolicyABOOnly
	PolicyACB     = sim.PolicyACB
	PolicyTPRAC   = sim.PolicyTPRAC
	PolicyNone    = sim.PolicyNone
)

var (
	// DefaultSystemConfig returns the paper's evaluated system for a
	// Back-Off threshold.
	DefaultSystemConfig = sim.DefaultSystemConfig
	// NewSystem builds and wires a System.
	NewSystem = sim.NewSystem
)

// DRAM device model.
type (
	// DRAMConfig describes one DDR5 channel with PRAC.
	DRAMConfig = dram.Config
	// PRACSpec configures per-row activation counting and Alert Back-Off.
	PRACSpec = dram.PRACSpec
)

// Policy is the memory-controller-side proactive RFM policy interface.
type Policy = mitigation.Policy

var (
	// DefaultDRAMConfig returns the paper's 32Gb DDR5-8000B device.
	DefaultDRAMConfig = dram.DefaultConfig
	// NewTPRACPolicy builds the Timing-Based RFM policy directly.
	NewTPRACPolicy = mitigation.NewTPRAC
)

// PRACLeak attacks (Section 3).
type (
	// ActivityConfig parameterizes the activity-based covert channel.
	ActivityConfig = attack.ActivityConfig
	// CountConfig parameterizes the activation-count covert channel.
	CountConfig = attack.CountConfig
	// ChannelResult summarizes a covert-channel transmission.
	ChannelResult = attack.ChannelResult
	// AESConfig parameterizes the AES T-table side-channel attack.
	AESConfig = attack.AESConfig
	// AESResult reports one side-channel attack instance.
	AESResult = attack.AESResult
	// CharacterizeConfig parameterizes the Figure 3 latency study.
	CharacterizeConfig = attack.CharacterizeConfig
)

var (
	// RunActivityChannel executes the activity-based covert channel.
	RunActivityChannel = attack.RunActivityChannel
	// RunCountChannel executes the activation-count covert channel.
	RunCountChannel = attack.RunCountChannel
	// RunAESAttack executes one AES side-channel attack instance.
	RunAESAttack = attack.RunAESAttack
	// RunAESAttackVoted majority-votes several attack instances.
	RunAESAttackVoted = attack.RunAESAttackVoted
	// RunCharacterization measures ABO-induced latency spikes.
	RunCharacterization = attack.RunCharacterization
)

// TPRAC security analysis (Section 4.2).
type (
	// AnalysisParams holds the Feinting-attack analysis inputs.
	AnalysisParams = analysis.Params
	// EmpiricalConfig drives a live Feinting attack against TPRAC.
	EmpiricalConfig = analysis.EmpiricalConfig
)

var (
	// DefaultAnalysisParams returns the paper's device parameters.
	DefaultAnalysisParams = analysis.DefaultParams
	// RunEmpiricalFeinting validates a TB-Window against the simulator.
	RunEmpiricalFeinting = analysis.RunEmpiricalFeinting
)

// Experiment reproduction (every evaluation table and figure).
type (
	// Scale controls experiment workload and instruction budgets, plus
	// the Workers/Serial scheduling knobs. Experiment grids fan out
	// across GOMAXPROCS goroutines by default; results are assembled
	// by grid position and are bit-identical at any worker count.
	Scale = exp.Scale
	// ExpRunner is a shareable experiment session: experiments run
	// through one session share a worker pool and a single-flight run
	// cache, so identical (variant, workload) simulations execute once.
	ExpRunner = exp.Runner
	// SessionOptions attaches the cross-process scaling layers to a
	// session: a persistent content-addressed run store, a shard spec
	// for multi-machine grids, and a crash-recovery run journal.
	SessionOptions = exp.SessionOptions
	// RunJournal is the append-only crash-recovery session journal:
	// completed runs, converged shards and finished experiments recorded
	// durably so an interrupted invocation resumes instead of rerunning.
	RunJournal = journal.Journal
	// JournalOptions configures a journal (schema, session fingerprint,
	// fsync batching).
	JournalOptions = journal.Options
	// JournalRecovery reports what opening a journal replayed, truncated
	// or rotated.
	JournalRecovery = journal.Recovery
	// JournalStats counts journal traffic (replayed, resume hits,
	// appended, torn-tail bytes, syncs).
	JournalStats = journal.Stats
	// JournalShardRecord is one journaled shard convergence.
	JournalShardRecord = journal.ShardRecord
	// RunStore is the persistent, content-addressed run store: a
	// counting, degrade-to-miss front over a StoreBackend.
	RunStore = store.Store
	// StoreBackend is one run-store storage implementation — disk
	// directory, pracstored client, or tiered (local cache over remote).
	StoreBackend = store.Backend
	// StoreEntryInfo describes one stored entry (Stat/List).
	StoreEntryInfo = store.Info
	// StoreStats counts store traffic, including the remote leg's.
	StoreStats = store.Stats
	// DiskStore is the local-directory backend.
	DiskStore = store.Disk
	// HTTPStore is the pracstored client backend.
	HTTPStore = store.HTTP
	// TieredStore layers a local read-through cache over a remote.
	TieredStore = store.Tiered
	// StoreServer serves a disk store over HTTP (cmd/pracstored).
	StoreServer = storeserver.Server
	// StoreServerOptions configures a StoreServer (auth token, log).
	StoreServerOptions = storeserver.Options
	// StoreInfoReport is the maintenance summary (tpracsim -store-info).
	StoreInfoReport = store.InfoReport
	// DiskStoreOptions tunes the disk backend's lifecycle: the eviction
	// disk budget and the orphaned-temp-file sweep threshold.
	DiskStoreOptions = store.DiskOptions
	// StoreOptions combines per-tier tuning for ResolveRunStoreFull:
	// disk lifecycle options plus the remote failure policy.
	StoreOptions = store.Options
	// StoreEvictionStats snapshots the budget/eviction counters
	// (footprint, evicted entries and bytes, sweeps).
	StoreEvictionStats = store.EvictionStats
	// ShardSpec selects one deterministic shard of a partitioned grid.
	ShardSpec = shard.Spec
	// DispatchOptions configures a shard-dispatch fleet run: worker
	// count (fixed, or elastic between MinWorkers/MaxWorkers), command
	// (re-exec or sh -c fleet template), per-shard attempt budget and
	// straggler policy (journal-resumed steal or speculative backup).
	DispatchOptions = dispatch.Options
	// DispatchResult is a converged dispatch: one validated shard file
	// per shard plus per-shard reports (slot, attempts, runs, wall,
	// worker summary).
	DispatchResult = dispatch.Result
	// DispatchShardReport summarizes one converged shard.
	DispatchShardReport = dispatch.ShardReport
	// WorkerSummary is the machine-readable trailer a shard worker
	// prints; the driver folds it into the shard's report.
	WorkerSummary = dispatch.Summary
	// HTTPStoreOptions tunes the pracstored client's failure policy:
	// per-attempt deadline, attempt budget, backoff base, breaker
	// cooldown.
	HTTPStoreOptions = store.HTTPOptions
	// FaultPlan is a parsed deterministic fault schedule (chaos testing).
	FaultPlan = fault.Plan
	// FaultAction is one injected fault a failpoint returned.
	FaultAction = fault.Action
	// RetryPolicy is the pipeline's unified retry/backoff/deadline
	// policy: capped exponential backoff with deterministic jitter and
	// per-attempt context deadlines.
	RetryPolicy = retry.Policy
)

var (
	// NewExpRunner returns an experiment session for a scale.
	NewExpRunner = exp.NewRunner
	// NewExpRunnerWith returns a session with a persistent store
	// and/or shard spec attached.
	NewExpRunnerWith = exp.NewRunnerWith
	// OpenRunStore opens (creating if needed) a run store directory.
	OpenRunStore = store.Open
	// NewRunStore wraps any StoreBackend in the counting front.
	NewRunStore = store.NewStore
	// OpenDiskStore opens the local-directory backend.
	OpenDiskStore = store.OpenDisk
	// OpenDiskStoreWith opens the disk backend with lifecycle options
	// (eviction budget, temp-sweep age).
	OpenDiskStoreWith = store.OpenDiskWith
	// OpenHTTPStore opens a pracstored client backend for a base URL.
	OpenHTTPStore = store.OpenHTTP
	// NewTieredStore layers a local cache backend over a remote one.
	NewTieredStore = store.NewTiered
	// ResolveRunStore resolves a -store argument (dir, URL, auto, off)
	// into an opened store — the CLIs' single entry point.
	ResolveRunStore = store.ResolveBackend
	// ResolveRunStoreWith is ResolveRunStore with an explicit remote
	// failure policy (timeouts, retries, breaker cooldown).
	ResolveRunStoreWith = store.ResolveBackendWith
	// ResolveRunStoreFull is ResolveRunStore with the full option
	// surface — disk lifecycle (eviction budget) plus remote policy.
	ResolveRunStoreFull = store.Resolve
	// ParseByteSize parses human-readable sizes ("512MB", "2GB") for
	// the -store-budget / -budget flags.
	ParseByteSize = store.ParseByteSize
	// ListStoreEntries streams a backend's entries without
	// materializing the full listing (million-entry-store maintenance).
	ListStoreEntries = store.ListEach
	// OpenHTTPStoreWith opens a pracstored client with an explicit
	// failure policy.
	OpenHTTPStoreWith = store.OpenHTTPWith
	// ParseFaultSchedule parses a fault-schedule spec string
	// ('seed=7;store.http.get:err@0.2;...') into a FaultPlan.
	ParseFaultSchedule = fault.Parse
	// EnableFaults activates a FaultPlan process-wide; EnableFaults(nil)
	// via DisableFaults turns injection off.
	EnableFaults = fault.Enable
	// DisableFaults deactivates fault injection.
	DisableFaults = fault.Disable
	// RetryPermanent marks an error as not-retryable under a RetryPolicy.
	RetryPermanent = retry.Permanent
	// NewStoreServer builds the pracstored HTTP handler over a disk
	// backend.
	NewStoreServer = storeserver.New
	// CollectStoreInfo summarizes a backend's contents (-store-info).
	CollectStoreInfo = store.Collect
	// PruneStore deletes entries from orphaned schema versions.
	PruneStore = store.Prune
	// DefaultRunStoreDir is the user-cache-dir store location.
	DefaultRunStoreDir = store.DefaultDir
	// ParseShard reads an "i/n" shard spec.
	ParseShard = shard.Parse
	// Dispatch spawns `-shard i/n` workers across a pool, retries
	// failures and stragglers, and returns validated shard files for
	// ImportShards to merge — the one-command fleet run.
	Dispatch = dispatch.Run
	// OpenJournal opens (recovering if present) a crash-recovery session
	// journal at a path.
	OpenJournal = journal.Open
	// JournalFingerprint condenses session-defining arguments into the
	// fingerprint a journal is keyed by.
	JournalFingerprint = journal.Fingerprint

	// QuickScale is the minutes-scale experiment configuration.
	QuickScale = exp.QuickScale
	// FullScale runs the whole 50-workload catalog.
	FullScale = exp.FullScale

	// RunFig3 reproduces Figure 3 (ABO latency characterization).
	RunFig3 = exp.RunFig3
	// RunTable2 reproduces Table 2 (covert-channel bitrates).
	RunTable2 = exp.RunTable2
	// RunFig4 reproduces Figure 4 (side-channel attack instance).
	RunFig4 = exp.RunFig4
	// RunFig5 reproduces Figure 5 (key-byte sweep).
	RunFig5 = exp.RunFig5
	// RunFig7 reproduces Figure 7 (TMAX analysis + TB-Window solving).
	RunFig7 = exp.RunFig7
	// RunFig9 reproduces Figure 9 (attack with and without TPRAC).
	RunFig9 = exp.RunFig9
	// RunFig10 reproduces Figure 10 (main performance comparison).
	RunFig10 = exp.RunFig10
	// RunFig11 reproduces Figure 11 (PRAC-level sensitivity).
	RunFig11 = exp.RunFig11
	// RunFig12 reproduces Figure 12 (targeted-refresh sensitivity).
	RunFig12 = exp.RunFig12
	// RunFig13 reproduces Figure 13 (RowHammer-threshold sensitivity).
	RunFig13 = exp.RunFig13
	// RunFig14 reproduces Figure 14 (counter-reset sensitivity).
	RunFig14 = exp.RunFig14
	// RunTable5 reproduces Table 5 (energy overhead).
	RunTable5 = exp.RunTable5
	// RunRFMpb evaluates the Section 7.2 per-bank TB-RFM extension.
	RunRFMpb = exp.RunRFMpb
)

// Experiment service (cmd/pracsimd): experiments as a multi-tenant job
// queue — grid specs submitted over HTTP, run keys deduped against the
// store, shard work items leased to pull workers, progress streamed
// over SSE, and the whole queue journal-backed so a killed daemon
// restarts with zero re-executed runs.
type (
	// ExpService is the pracsimd HTTP daemon: job API, dedup queue,
	// lease protocol, SSE streams and result serving in one handler.
	ExpService = service.Server
	// ExpServiceOptions configures an ExpService (scales, tokens,
	// quotas, lease TTL, journal path, store).
	ExpServiceOptions = service.Options
	// ExpGridSpec is a submitted job: experiments × scale × shards ×
	// priority, validated against tpracsim's flag grammar.
	ExpGridSpec = service.GridSpec
	// ExpJobStatus is a job's live status snapshot (state, progress,
	// executed-run and warm-key counts, results).
	ExpJobStatus = service.JobStatus
	// ExpServiceClient is the typed client for the pracsimd job and
	// worker APIs (used by tpracsim -pull).
	ExpServiceClient = service.Client
	// ExpServiceRestore reports what a restarting daemon adopted from
	// its queue journal (jobs, acked items, requeued items).
	ExpServiceRestore = service.RestoreSummary
	// PullWorkerOptions configures a lease-execute-ack pull worker.
	PullWorkerOptions = service.WorkerOptions
	// PullWorkerSummary is a pull worker's exit accounting (items,
	// runs, executed, failures).
	PullWorkerSummary = service.WorkerSummary
	// AuthTokens is the shared bearer-token set guarding pracstored
	// and pracsimd endpoints.
	AuthTokens = httpd.Tokens
	// HTTPMetrics tracks per-endpoint request counts and latency
	// histograms for a daemon's /metrics page.
	HTTPMetrics = httpd.Metrics
)

var (
	// NewExpService builds the pracsimd daemon, replaying its queue
	// journal if one exists.
	NewExpService = service.New
	// NewExpServiceClient opens a typed client for a pracsimd URL.
	NewExpServiceClient = service.NewClient
	// RunPullWorker leases, executes and acks shard work items from a
	// pracsimd daemon until the context ends (tpracsim -pull).
	RunPullWorker = service.RunWorker
	// ParseAuthTokens parses a comma-separated bearer-token list.
	ParseAuthTokens = httpd.ParseTokens
	// NewHTTPMetrics returns an empty per-endpoint metrics tracker.
	NewHTTPMetrics = httpd.NewMetrics
)

// ErrDispatchInterrupted reports a dispatch cancelled mid-fleet (signal
// drain); converged shards are checkpointed in the journal and a
// re-invocation with the same plan adopts them.
var ErrDispatchInterrupted = dispatch.ErrInterrupted

// PolicyTPRACpb is the Section 7.2 per-bank TB-RFM extension.
const PolicyTPRACpb = sim.PolicyTPRACpb

// NewTPRACPerBankPolicy builds the per-bank Timing-Based RFM policy.
var NewTPRACPerBankPolicy = mitigation.NewTPRACPerBank
