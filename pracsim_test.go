package pracsim_test

import (
	"testing"

	"pracsim"
)

// The facade is the public API; these tests pin its surface and wire-up.

func TestFacadeSystemRoundTrip(t *testing.T) {
	cfg := pracsim.DefaultSystemConfig(1024)
	cfg.Workload = "470.lbm"
	cfg.Policy = pracsim.PolicyTPRAC
	w, err := pracsim.DefaultAnalysisParams().SolveWindow(1024, true, 0)
	if err != nil {
		t.Fatal(err)
	}
	cfg.TBWindow = w
	sys, err := pracsim.NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.Run(2_000, 8_000)
	if err != nil {
		t.Fatal(err)
	}
	if res.IPCSum <= 0 {
		t.Fatal("no progress through the facade")
	}
	if res.DRAM.AlertsAsserted != 0 {
		t.Fatalf("TPRAC raised %d alerts", res.DRAM.AlertsAsserted)
	}
}

func TestFacadeAttackAndDefense(t *testing.T) {
	key := make([]byte, 16)
	key[0] = 0x5c
	res, err := pracsim.RunAESAttackVoted(pracsim.AESConfig{
		Key:         key,
		TargetByte:  0,
		Plaintext:   0,
		Encryptions: 150,
		NBO:         256,
		Seed:        2,
	}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if res.RecoveredNib != 0x5 {
		t.Fatalf("facade attack recovered %#x, want 0x5", res.RecoveredNib)
	}

	defended := pracsim.AESConfig{
		Key:         key,
		TargetByte:  0,
		Plaintext:   0,
		Encryptions: 150,
		NBO:         256,
		Seed:        2,
		Defense: func() (pracsim.Policy, error) {
			return pracsim.NewTPRACPolicy(pracsim.FromNS(975), false)
		},
	}
	dres, err := pracsim.RunAESAttack(defended)
	if err != nil {
		t.Fatal(err)
	}
	if dres.ABORFMs != 0 {
		t.Fatalf("TPRAC run produced %d ABO RFMs", dres.ABORFMs)
	}
}

func TestFacadeCovertChannel(t *testing.T) {
	res, err := pracsim.RunActivityChannel(pracsim.ActivityConfig{
		NBO:  256,
		Bits: []bool{true, false, true},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors != 0 {
		t.Fatalf("facade covert channel errors: %d", res.Errors)
	}
}

func TestFacadeAnalysis(t *testing.T) {
	p := pracsim.DefaultAnalysisParams()
	w, err := p.SolveWindow(1024, true, 0)
	if err != nil {
		t.Fatal(err)
	}
	if p.TMax(w, true) >= 1024 {
		t.Fatal("solved window does not protect")
	}
}
